"""Tests for partial-cube schedule trees (Section 3)."""

import pytest

from repro.core.partial import build_partial_schedule_tree, prune_full_tree
from repro.core.pipesort import build_schedule_tree, sort_cost
from repro.core.views import all_views, is_prefix, parse_view_name


def est_uniform(d, size=1000.0):
    return {v: size for v in all_views(d)}


class TestBuildPartialTree:
    def test_covers_selected(self):
        root = (0, 1, 2, 3)
        selected = [(0, 1), (2,), (1, 3)]
        tree = build_partial_schedule_tree(selected, root, est_uniform(4))
        for v in selected:
            assert v in tree
        tree.validate()

    def test_root_always_present(self):
        tree = build_partial_schedule_tree([(0,)], (0, 1), est_uniform(2))
        assert tree.root == (0, 1)

    def test_empty_selection_gives_root_only(self):
        tree = build_partial_schedule_tree([], (0, 1, 2), est_uniform(3))
        assert len(tree) == 1

    def test_selected_equal_root_ok(self):
        # the root is already materialised by the partitioning phase; when
        # it is itself selected the tree needs no extra node for it
        tree = build_partial_schedule_tree(
            [(0, 1)], (0, 1), est_uniform(2)
        )
        assert len(tree) == 1
        assert (0, 1) in tree

    def test_rejects_non_subset(self):
        with pytest.raises(ValueError, match="not a subset"):
            build_partial_schedule_tree([(5,)], (0, 1), {})

    def test_chained_selected_views_reuse_each_other(self):
        # ABC and AB selected: AB should come from ABC, not the root ABCD
        # (sizes make the root much more expensive).
        est = {v: 10.0 ** len(v) for v in all_views(4)}
        tree = build_partial_schedule_tree(
            [parse_view_name("ABC"), parse_view_name("AB")],
            (0, 1, 2, 3),
            est,
        )
        assert tree.nodes[parse_view_name("AB")].parent == parse_view_name("ABC")

    def test_beneficial_intermediate_inserted(self):
        """Many small sibling views sharing a small common superset should
        trigger insertion of that superset as an intermediate."""
        d = 5
        est = {
            v: 1_000_000.0 if len(v) >= 4 else 5000.0 if len(v) == 3 else 10.0
            for v in all_views(d)
        }
        est[(0, 1, 2)] = 50.0  # the one cheap shared ancestor
        selected = [(0, 1), (0, 2), (1, 2), (0,), (1,), (2,)]
        tree = build_partial_schedule_tree(
            selected, (0, 1, 2, 3, 4), est
        )
        assert (0, 1, 2) in tree  # intermediate added
        for v in selected:
            parent = tree.nodes[v].parent
            assert est[parent] <= 100.0  # nobody pays a giant producer
        tree.validate()

    def test_no_intermediate_when_not_beneficial(self):
        est = est_uniform(3, 10.0)
        selected = [(0,)]
        tree = build_partial_schedule_tree(selected, (0, 1, 2), est)
        # only root + selected: nothing else pays off
        assert set(tree.views()) == {(0, 1, 2), (0,)}

    def test_scan_upgrade_respects_root_order(self):
        tree = build_partial_schedule_tree(
            [(0,), (1,), (0, 1)], (0, 1, 2), est_uniform(3),
            root_order=(0, 1, 2),
        )
        tree.validate()
        root_node = tree.nodes[(0, 1, 2)]
        for c in root_node.children:
            if tree.nodes[c].mode == "scan":
                assert is_prefix(tree.nodes[c].order, (0, 1, 2))

    def test_at_most_one_scan_child_each(self):
        selected = all_views(4)[1:]  # everything but ALL... plus root etc.
        tree = build_partial_schedule_tree(
            selected, (0, 1, 2, 3), est_uniform(4)
        )
        for node in tree.nodes.values():
            scans = [c for c in node.children if tree.nodes[c].mode == "scan"]
            assert len(scans) <= 1

    def test_level_skipping_edges_allowed(self):
        tree = build_partial_schedule_tree(
            [(0,)], (0, 1, 2, 3), est_uniform(4)
        )
        assert tree.nodes[(0,)].parent == (0, 1, 2, 3)
        tree.validate()


class TestPruneFullTree:
    def make_full(self, d=4):
        views = all_views(d)
        root = tuple(range(d))
        est = {v: 100.0 * max(len(v), 1) for v in views}
        return build_schedule_tree(views, root, est, root)

    def test_prune_keeps_paths(self):
        full = self.make_full()
        selected = [(0,), (1, 2)]
        pruned = prune_full_tree(full, selected)
        for v in selected:
            assert v in pruned
            # full path to root preserved
            cur = v
            while cur != pruned.root:
                cur = pruned.nodes[cur].parent
        pruned.validate()

    def test_prune_is_subtree(self):
        full = self.make_full()
        pruned = prune_full_tree(full, [(0, 1), (3,)])
        for view, node in pruned.nodes.items():
            if node.parent is not None:
                assert full.nodes[view].parent == node.parent
                assert full.nodes[view].mode == node.mode

    def test_prune_smaller_than_full(self):
        full = self.make_full()
        pruned = prune_full_tree(full, [(0,)])
        assert len(pruned) < len(full)

    def test_prune_unknown_view_rejected(self):
        full = self.make_full(3)
        with pytest.raises(ValueError):
            prune_full_tree(full, [(0, 1, 2, 3)])

    def test_prune_everything_is_identity(self):
        full = self.make_full(3)
        pruned = prune_full_tree(full, all_views(3))
        assert set(pruned.views()) == set(full.views())


class TestCostSanity:
    def test_partial_cheaper_than_full(self):
        """Scheduling 3 views must not cost more than the full cube tree."""
        d = 5
        est = {v: 500.0 * max(len(v), 1) for v in all_views(d)}
        root = tuple(range(d))
        full = build_schedule_tree(all_views(d), root, est, root)
        partial = build_partial_schedule_tree(
            [(0,), (1, 2), (0, 3)], root, est
        )
        assert partial.estimated_cost(est) < full.estimated_cost(est)
