"""Tests for the Vitter-Shriver striped disk array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.diskarray import DiskArray
from repro.storage.external_sort import external_sort
from repro.storage.table import Relation


def make_rel(n, width=2, seed=0):
    rng = np.random.default_rng(seed)
    return Relation(
        rng.integers(0, 50, (n, width)).astype(np.int64), rng.random(n)
    )


class TestRoundtrip:
    @pytest.mark.parametrize("disks", [1, 2, 3, 5])
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 65, 200])
    def test_spill_load(self, disks, n):
        array = DiskArray(block_size=8, disks=disks)
        rel = make_rel(n)
        token = array.spill(rel)
        if n:
            assert array.load(token).same_content(rel)
            # striping must preserve ROW ORDER, not just content
            assert np.array_equal(array.load(token).dims, rel.dims)
        else:
            assert array.load(token).nrows == 0

    def test_delete(self):
        array = DiskArray(block_size=4, disks=2)
        token = array.spill(make_rel(10))
        array.delete(token)
        with pytest.raises(FileNotFoundError):
            array.load(token)
        array.delete(token)  # idempotent

    @pytest.mark.parametrize("start,stop", [(0, 5), (3, 17), (8, 16), (15, 40), (0, 40)])
    def test_load_slice(self, start, stop):
        array = DiskArray(block_size=8, disks=3)
        rel = make_rel(40, seed=3)
        token = array.spill(rel)
        got = array.load_slice(token, start, stop)
        assert np.array_equal(got.dims, rel.dims[start:stop])
        assert np.allclose(got.measure, rel.measure[start:stop])

    def test_load_slice_clamps(self):
        array = DiskArray(block_size=8, disks=2)
        token = array.spill(make_rel(10))
        assert array.load_slice(token, 5, 100).nrows == 5
        assert array.load_slice(token, 8, 3).nrows == 0

    @settings(max_examples=25)
    @given(st.integers(1, 4), st.integers(0, 120), st.integers(1, 12))
    def test_roundtrip_property(self, disks, n, block):
        array = DiskArray(block_size=block, disks=disks)
        rel = make_rel(n, seed=n + disks)
        token = array.spill(rel)
        back = array.load(token)
        if n:
            assert np.array_equal(back.dims, rel.dims)
            assert np.allclose(back.measure, rel.measure)


class TestStripingModel:
    def test_blocks_balanced(self):
        """The mechanism must meet the model: D disks share the blocks of
        a large file within one block of each other."""
        array = DiskArray(block_size=8, disks=4)
        array.spill(make_rel(8 * 4 * 25))  # 100 blocks over 4 disks
        per_disk = [m.stats.blocks_written for m in array.members]
        assert max(per_disk) - min(per_disk) <= 1
        assert array.balance() <= 1 / 4 + 0.01

    def test_io_steps_are_parallel(self):
        array = DiskArray(block_size=8, disks=4)
        array.spill(make_rel(8 * 40))  # 40 blocks
        assert array.io_steps() == 10  # 40 / 4
        assert array.stats.blocks_written == 40

    def test_charge_hooks_striped(self):
        array = DiskArray(block_size=10, disks=2)
        array.charge_scan(100)  # 10 blocks -> 5 per disk
        per_disk = [m.stats.blocks_read for m in array.members]
        assert per_disk == [5, 5]

    def test_model_agreement(self):
        """io_steps ~= blocks_total / D: the MachineSpec division that the
        clock applies is exactly what the mechanism achieves."""
        array = DiskArray(block_size=8, disks=3)
        rel = make_rel(8 * 30, seed=1)
        token = array.spill(rel)
        array.load(token)
        assert array.io_steps() == pytest.approx(
            array.stats.blocks_total / 3, abs=1.0
        )

    def test_rejects_zero_disks(self):
        with pytest.raises(ValueError):
            DiskArray(block_size=8, disks=0)


class TestKernelsRunOnArrays:
    def test_external_sort_on_disk_array(self):
        """The array quacks like LocalDisk: the external sort runs on it
        unchanged and stripes its runs."""
        array = DiskArray(block_size=8, disks=2)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 10**6, 600).astype(np.int64)
        values = rng.random(600)
        sorted_keys, sorted_values = external_sort(keys, values, array, 64)
        assert np.all(np.diff(sorted_keys) >= 0)
        assert sorted(sorted_values.tolist()) == sorted(values.tolist())
        # both member disks participated
        assert all(m.stats.blocks_total > 0 for m in array.members)

    def test_real_files(self, tmp_path):
        array = DiskArray(block_size=8, disks=2, root=str(tmp_path))
        rel = make_rel(30)
        token = array.spill(rel)
        assert array.load(token).same_content(rel)
