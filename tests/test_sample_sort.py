"""Tests for Procedure 2: Adaptive-Sample-Sort (single and batched)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineSpec
from repro.core.sample_sort import (
    adaptive_sample_sort,
    batched_sample_sort,
    relative_imbalance,
)
from repro.mpi.engine import run_spmd


class TestRelativeImbalance:
    def test_balanced_is_zero(self):
        assert relative_imbalance(np.array([10, 10, 10])) == 0.0

    def test_paper_formula(self):
        # avg 10; max deviation (14-10)/10
        assert relative_imbalance(np.array([14, 10, 6])) == pytest.approx(0.4)

    def test_min_side_dominates_when_larger(self):
        assert relative_imbalance(np.array([11, 11, 2])) == pytest.approx(
            (8 - 2) / 8
        )

    def test_degenerate(self):
        assert relative_imbalance(np.array([])) == 0.0
        assert relative_imbalance(np.array([5])) == 0.0
        assert relative_imbalance(np.array([0, 0, 0])) == 0.0


def distribute(keys, vals, p, rank, mode="block"):
    """Deal global arrays onto ranks."""
    if mode == "block":
        return np.array_split(keys, p)[rank], np.array_split(vals, p)[rank]
    return keys[rank::p], vals[rank::p]


def run_sort(keys, vals, p, gamma=0.03, mode="round", pivot_offset=None):
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)

    def prog(comm):
        k, v = distribute(keys, vals, p, comm.rank, mode)
        out = adaptive_sample_sort(
            comm, k, v, gamma, pivot_offset=pivot_offset
        )
        return out

    res = run_spmd(prog, MachineSpec(p=p))
    return res.rank_results


class TestAdaptiveSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_global_sortedness(self, p):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 10**6, 5000)
        outs = run_sort(keys, rng.random(5000), p)
        prev_max = -np.inf
        for out in outs:
            if out.keys.size:
                assert np.all(np.diff(out.keys) >= 0)
                assert out.keys[0] >= prev_max
                prev_max = out.keys[-1]

    def test_multiset_preserved(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, 2000)
        vals = rng.random(2000)
        outs = run_sort(keys, vals, 4)
        all_keys = np.concatenate([o.keys for o in outs])
        all_vals = np.concatenate([o.measure for o in outs])
        assert sorted(all_keys.tolist()) == sorted(keys.tolist())
        assert np.isclose(all_vals.sum(), vals.sum())

    def test_duplicates_never_straddle_without_shift(self):
        """side='right' bucketing: equal keys land on exactly one rank."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 20, 4000)  # heavy duplication
        outs = run_sort(keys, np.ones(4000), 4, gamma=1.0)  # no shift ever
        owners: dict[int, int] = {}
        for rank, out in enumerate(outs):
            assert not out.shifted
            for key in np.unique(out.keys):
                assert key not in owners, f"key {key} on two ranks"
                owners[int(key)] = rank

    def test_shift_balances(self):
        # all-equal keys: everything lands on one rank, shift must rebalance
        keys = np.zeros(1000, dtype=np.int64)
        outs = run_sort(keys, np.ones(1000), 4, gamma=0.03)
        sizes = np.array([o.keys.size for o in outs])
        assert outs[0].shifted
        assert relative_imbalance(sizes) <= 0.03

    def test_no_shift_when_within_gamma(self):
        # the rho = p/2 pivot offset makes the extreme buckets differ from
        # the average by ~half a bucket, so I lands just above 0.5
        keys = np.arange(4000, dtype=np.int64)
        outs = run_sort(keys, np.ones(4000), 4, gamma=0.55, mode="block")
        assert not any(o.shifted for o in outs)

    def test_empty_input_everywhere(self):
        outs = run_sort([], [], 3)
        assert all(o.keys.size == 0 for o in outs)

    def test_one_rank_has_all_data(self):
        def prog(comm):
            if comm.rank == 0:
                k = np.arange(1000, dtype=np.int64)
                v = np.ones(1000)
            else:
                k = np.empty(0, dtype=np.int64)
                v = np.empty(0)
            return adaptive_sample_sort(comm, k, v, 0.03)

        res = run_spmd(prog, MachineSpec(p=4))
        sizes = [o.keys.size for o in res.rank_results]
        assert sum(sizes) == 1000
        assert relative_imbalance(np.array(sizes)) <= 0.03

    def test_presorted_aligned_with_zero_offset_moves_nothing(self):
        keys = np.arange(8000, dtype=np.int64)

        def prog(comm):
            k, v = distribute(keys, keys.astype(float), 4, comm.rank, "block")
            return adaptive_sample_sort(comm, k, v, 0.03, pivot_offset=0)

        res = run_spmd(prog, MachineSpec(p=4))
        # off-rank traffic should be a tiny fraction of the 128 KB payload
        assert res.stats.bytes_by_kind["alltoall"] < 10_000

    def test_paper_offset_respected_by_default(self):
        keys = np.arange(8000, dtype=np.int64)

        def prog(comm):
            k, v = distribute(keys, keys.astype(float), 4, comm.rank, "block")
            return adaptive_sample_sort(comm, k, v, 0.5)

        res = run_spmd(prog, MachineSpec(p=4))
        # rho = p/2 shifts pivots half a bucket: substantial movement
        assert res.stats.bytes_by_kind["alltoall"] > 20_000

    def test_mismatched_arrays_rejected(self):
        def prog(comm):
            return adaptive_sample_sort(
                comm, np.zeros(3, dtype=np.int64), np.zeros(2), 0.03
            )

        with pytest.raises(ValueError):
            run_spmd(prog, MachineSpec(p=2))

    @settings(max_examples=10)
    @given(
        st.lists(st.integers(0, 1000), max_size=300),
        st.integers(2, 5),
    )
    def test_property_sorted_and_preserved(self, raw, p):
        keys = np.array(raw, dtype=np.int64)
        outs = run_sort(keys, np.ones(len(raw)), p)
        got = np.concatenate([o.keys for o in outs])
        assert sorted(got.tolist()) == sorted(raw)
        prev = -1
        for out in outs:
            if out.keys.size:
                assert out.keys[0] >= prev
                prev = out.keys[-1]


class TestBatchedSampleSort:
    def test_matches_individual_sorts(self):
        rng = np.random.default_rng(3)
        arrays = [
            rng.integers(0, 10**5, n).astype(np.int64)
            for n in (500, 1200, 3, 0, 77)
        ]

        def prog_batched(comm):
            items = [
                distribute(k, k.astype(float), comm.size, comm.rank, "round")
                for k in arrays
            ]
            return batched_sample_sort(comm, items, 0.03)

        res_b = run_spmd(prog_batched, MachineSpec(p=4))

        for item, keys in enumerate(arrays):
            outs = run_sort(keys, keys.astype(float), 4)
            batched_keys = np.concatenate(
                [res_b.rank_results[j][item].keys for j in range(4)]
            )
            single_keys = np.concatenate([o.keys for o in outs])
            assert np.array_equal(batched_keys, single_keys)

    def test_empty_item_list(self):
        def prog(comm):
            return batched_sample_sort(comm, [], 0.03)

        res = run_spmd(prog, MachineSpec(p=3))
        assert res.rank_results == [[], [], []]

    def test_collective_count_independent_of_item_count(self):
        def prog(comm, n_items):
            rng = np.random.default_rng(comm.rank)
            items = [
                (rng.integers(0, 100, 50).astype(np.int64), np.ones(50))
                for _ in range(n_items)
            ]
            batched_sample_sort(comm, items, 0.03)

        res1 = run_spmd(prog, MachineSpec(p=3), args=(1,))
        res8 = run_spmd(prog, MachineSpec(p=3), args=(8,))
        assert res1.stats.collectives == res8.stats.collectives

    def test_per_item_balance_contract(self):
        def prog(comm):
            # item 0 all-equal keys (needs shift), item 1 already spread
            k0 = np.full(500, 7, dtype=np.int64)
            k1 = np.arange(comm.rank * 500, comm.rank * 500 + 500, dtype=np.int64)
            items = [(k0, np.ones(500)), (k1, np.ones(500))]
            return batched_sample_sort(comm, items, 0.03, pivot_offset=0)

        res = run_spmd(prog, MachineSpec(p=4))
        sizes0 = np.array(
            [res.rank_results[j][0].keys.size for j in range(4)]
        )
        assert relative_imbalance(sizes0) <= 0.03
        assert res.rank_results[0][0].shifted
        assert not res.rank_results[0][1].shifted
