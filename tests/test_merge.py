"""Tests for Procedure 3: Merge-Partitions (cases 1, 2 and 3)."""

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec
from repro.core.merge import (
    MergeReport,
    _resolve_boundary_chains,
    merge_partitions,
)
from repro.core.pipesort import ScheduleTree
from repro.core.viewdata import ViewData
from repro.mpi.engine import run_spmd


class TestBoundaryChains:
    """P0-side straddle-chain resolution for prefix views.

    Summary tuples are (count, first_key, first_val, last_key, last_val).
    Instructions are (drop_first, drop_all, set_last).
    """

    def test_no_straddle(self):
        instr = _resolve_boundary_chains(
            [(2, 1, 1.0, 2, 2.0), (2, 3, 3.0, 4, 4.0)], "sum"
        )
        assert instr == [(False, False, None), (False, False, None)]

    def test_simple_two_rank_straddle(self):
        instr = _resolve_boundary_chains(
            [(2, 1, 1.0, 5, 2.0), (2, 5, 3.0, 9, 4.0)], "sum"
        )
        assert instr[0] == (False, False, 5.0)  # 2.0 + 3.0
        assert instr[1] == (True, False, None)

    def test_three_rank_chain_with_singleton_middle(self):
        instr = _resolve_boundary_chains(
            [
                (3, 0, 1.0, 7, 2.0),
                (1, 7, 3.0, 7, 3.0),  # whole rank is key 7
                (2, 7, 4.0, 9, 5.0),
            ],
            "sum",
        )
        assert instr[0] == (False, False, 9.0)  # 2 + 3 + 4
        assert instr[1] == (False, True, None)  # dropped entirely
        assert instr[2] == (True, False, None)

    def test_chain_across_empty_rank(self):
        instr = _resolve_boundary_chains(
            [
                (2, 0, 1.0, 7, 2.0),
                (0, 0, 0.0, 0, 0.0),  # empty rank
                (2, 7, 3.0, 9, 4.0),
            ],
            "sum",
        )
        assert instr[0] == (False, False, 5.0)
        assert instr[2] == (True, False, None)

    def test_back_to_back_chains(self):
        # rank1's first row joins rank0's chain; rank1's last row starts a
        # new chain with rank2.
        instr = _resolve_boundary_chains(
            [
                (2, 0, 1.0, 5, 2.0),
                (2, 5, 3.0, 8, 4.0),
                (2, 8, 5.0, 9, 6.0),
            ],
            "sum",
        )
        assert instr[0] == (False, False, 5.0)  # 2+3
        assert instr[1] == (True, False, 9.0)  # drops first, owns key 8: 4+5
        assert instr[2] == (True, False, None)

    def test_min_aggregate(self):
        instr = _resolve_boundary_chains(
            [(1, 5, 4.0, 5, 4.0), (1, 5, 2.0, 5, 2.0)], "min"
        )
        assert instr[0] == (False, False, 2.0)
        assert instr[1] == (False, True, None)

    def test_all_ranks_single_same_key(self):
        instr = _resolve_boundary_chains(
            [(1, 3, 1.0, 3, 1.0)] * 4, "sum"
        )
        assert instr[0] == (False, False, 4.0)
        for j in range(1, 4):
            assert instr[j] == (False, True, None)

    def test_single_rank_noop(self):
        assert _resolve_boundary_chains([(5, 0, 1.0, 9, 2.0)], "sum") == [
            (False, False, None)
        ]


def run_merge(pieces_per_rank, orders, root_order, gamma=0.03, agg="sum"):
    """Drive merge_partitions with hand-crafted per-rank ViewData."""
    p = len(pieces_per_rank)
    root_view = tuple(sorted(root_order))

    def prog(comm):
        tree = ScheduleTree(root_view, root_order)
        local = {}
        for view_idx, order in enumerate(orders):
            keys, vals = pieces_per_rank[comm.rank][view_idx]
            local[tuple(sorted(order))] = ViewData(
                order,
                np.asarray(keys, dtype=np.int64),
                np.asarray(vals, dtype=np.float64),
            )
        cfg = CubeConfig(gamma_merge=gamma, agg=agg)
        merged, report = merge_partitions(comm, local, tree, cfg, 1 << 16)
        return merged, report

    res = run_spmd(prog, MachineSpec(p=p))
    return res


class TestMergePartitions:
    def test_prefix_view_boundary_agglomeration(self):
        # root order (0,1); view (0,) is a prefix view; key 5 straddles
        pieces = [
            [([1, 5], [1.0, 2.0])],
            [([5, 9], [3.0, 4.0])],
        ]
        res = run_merge(pieces, orders=[(0,)], root_order=(0, 1))
        merged0, report0 = res.rank_results[0]
        merged1, _ = res.rank_results[1]
        assert report0.cases[(0,)] == "case1"
        assert merged0[(0,)].keys.tolist() == [1, 5]
        assert merged0[(0,)].measure.tolist() == [1.0, 5.0]
        assert merged1[(0,)].keys.tolist() == [9]

    def test_nonprefix_balanced_goes_case2(self):
        # view order (1,) is NOT a prefix of root order (0,1).
        # Ranks hold interleaved key ranges with mild overlap.
        pieces = [
            [(list(range(0, 50)), [1.0] * 50)],
            [(list(range(45, 95)), [1.0] * 50)],
        ]
        res = run_merge(pieces, orders=[(1,)], root_order=(0, 1), gamma=0.3)
        merged0, report = res.rank_results[0]
        merged1, _ = res.rank_results[1]
        assert report.cases[(1,)] == "case2"
        keys0 = merged0[(1,)].keys
        keys1 = merged1[(1,)].keys
        # overlap keys 45..49 fully aggregated on rank 0 (the owner)
        all_keys = np.concatenate([keys0, keys1])
        assert sorted(all_keys.tolist()) == list(range(95))
        total = merged0[(1,)].measure.sum() + merged1[(1,)].measure.sum()
        assert total == pytest.approx(100.0)
        overlap_vals = merged0[(1,)].measure[np.isin(keys0, range(45, 50))]
        assert np.all(overlap_vals == 2.0)

    def test_nonprefix_imbalanced_goes_case3(self):
        # every rank's last key is huge -> rank 0 would own everything
        pieces = [
            [(list(range(0, 100)) + [10**6], [1.0] * 101)],
            [(list(range(100, 200)) + [10**6 + 1], [1.0] * 101)],
        ]
        res = run_merge(pieces, orders=[(1,)], root_order=(0, 1), gamma=0.03)
        merged0, report = res.rank_results[0]
        merged1, _ = res.rank_results[1]
        assert report.cases[(1,)] == "case3"
        sizes = np.array(
            [merged0[(1,)].keys.size, merged1[(1,)].keys.size]
        )
        # case 3 re-balances within gamma
        assert abs(sizes[0] - sizes[1]) / sizes.mean() <= 0.1
        assert sizes.sum() == 202

    def test_case3_preserves_aggregation(self):
        # same key appears on both ranks; case 3 must combine it once
        pieces = [
            [([7, 10**6], [1.0, 1.0])],
            [([7, 10**6 + 1], [2.0, 1.0])],
        ]
        res = run_merge(
            pieces, orders=[(1,)], root_order=(0, 1), gamma=0.0001
        )
        merged0, _ = res.rank_results[0]
        merged1, _ = res.rank_results[1]
        all_keys = np.concatenate(
            [merged0[(1,)].keys, merged1[(1,)].keys]
        ).tolist()
        all_vals = np.concatenate(
            [merged0[(1,)].measure, merged1[(1,)].measure]
        ).tolist()
        combined = dict(zip(all_keys, all_vals))
        assert combined[7] == pytest.approx(3.0)
        assert all_keys.count(7) == 1

    def test_root_is_case1(self):
        pieces = [
            [([0, 1], [1.0, 1.0])],
            [([2, 3], [1.0, 1.0])],
        ]
        res = run_merge(pieces, orders=[(0, 1)], root_order=(0, 1))
        _, report = res.rank_results[0]
        assert report.cases[(0, 1)] == "case1"

    def test_empty_views_survive(self):
        pieces = [
            [([], []), ([], [])],
            [([], []), ([], [])],
        ]
        res = run_merge(
            pieces, orders=[(0, 1), (1,)], root_order=(0, 1)
        )
        merged0, report = res.rank_results[0]
        assert merged0[(0, 1)].nrows == 0
        assert merged0[(1,)].nrows == 0
        assert len(report.cases) == 2

    def test_report_counts(self):
        report = MergeReport(cases={(0,): "case1", (1,): "case3"})
        assert report.count("case1") == 1
        assert report.count("case2") == 0
        assert report.count("case3") == 1
