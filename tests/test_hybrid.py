"""Tests for the hybrid dense/sparse layout (repro.storage.dense), the
serving-side HybridView, and store format 3."""

import numpy as np
import pytest

from repro.config import MachineSpec
from repro.core.audit import audit_cube
from repro.core.cube import build_data_cube
from repro.olap import (
    CubeStore,
    HybridView,
    Query,
    QueryEngine,
    QueryService,
)
from repro.olap.index import SortedView
from repro.storage.dense import (
    DEFAULT_BLOCK_CELLS,
    build_hybrid,
    density_threshold,
    expand_hybrid,
)
from tests.conftest import make_relation

CARDS = (12, 8, 5, 3)
BASE = (0, 1, 2, 3)


def sorted_unique(rng, capacity, n):
    keys = np.sort(rng.choice(capacity, size=min(n, capacity), replace=False))
    return keys.astype(np.int64), rng.random(keys.shape[0])


# ---------------------------------------------------------------------------
# layout construction
# ---------------------------------------------------------------------------


class TestDensityThreshold:
    def test_calibrated_value(self):
        # (8 value bytes + 1/8 mask byte) per cell vs 16 bytes per row
        assert density_threshold() == 0.5078125

    def test_break_even(self):
        """At exactly the threshold, dense and sparse bytes tie."""
        cells = 1024
        rows = int(density_threshold() * cells)
        dense_bytes = cells * 8 + cells // 8
        sparse_bytes = rows * 16
        assert dense_bytes == sparse_bytes


class TestBuildHybrid:
    def test_empty(self):
        layout = build_hybrid(
            np.empty(0, dtype=np.int64), np.empty(0), capacity=100
        )
        assert layout.nrows == 0
        assert layout.n_dense_rows == 0 and layout.n_sparse_rows == 0
        keys, meas = expand_hybrid(layout)
        assert keys.size == 0 and meas.size == 0

    def test_fully_dense_full_blocks_omit_mask(self):
        capacity = 256
        keys = np.arange(capacity, dtype=np.int64)
        meas = np.arange(capacity, dtype=np.float64)
        layout = build_hybrid(keys, meas, capacity, block_cells=64)
        assert layout.dense_blocks.tolist() == [0, 1, 2, 3]
        assert layout.dense_full.all()
        assert layout.dense_mask.size == 0  # full blocks carry no mask
        assert layout.n_sparse_rows == 0
        k, m = expand_hybrid(layout)
        assert np.array_equal(k, keys) and np.array_equal(m, meas)

    def test_all_sparse(self):
        rng = np.random.default_rng(0)
        keys, meas = sorted_unique(rng, 100_000, 50)
        layout = build_hybrid(keys, meas, 100_000, block_cells=64)
        assert layout.n_dense_rows == 0
        assert np.array_equal(layout.sparse_keys, keys)
        k, m = expand_hybrid(layout)
        assert np.array_equal(k, keys) and np.array_equal(m, meas)

    def test_zero_measures_survive(self):
        """The occupancy mask distinguishes 'absent' from 'sums to 0'."""
        keys = np.array([0, 1, 2, 3, 5, 6, 7], dtype=np.int64)
        meas = np.zeros(7, dtype=np.float64)
        layout = build_hybrid(keys, meas, capacity=8, block_cells=8)
        assert layout.n_dense_rows == 7
        assert not layout.dense_full[0]  # cell 4 empty -> mask present
        k, m = expand_hybrid(layout)
        assert np.array_equal(k, keys)
        assert np.array_equal(m, meas)

    def test_capacity_smaller_than_block(self):
        """The tail block is short; density uses the real cell count."""
        keys = np.arange(10, dtype=np.int64)
        meas = np.ones(10)
        layout = build_hybrid(keys, meas, capacity=10, block_cells=1024)
        assert layout.dense_blocks.tolist() == [0]
        assert layout.cells_of(0) == 10
        assert layout.dense_full[0]
        k, m = expand_hybrid(layout)
        assert np.array_equal(k, keys) and np.array_equal(m, meas)

    def test_threshold_override(self):
        rng = np.random.default_rng(1)
        keys, meas = sorted_unique(rng, 1024, 200)  # ~20% occupancy
        forced_dense = build_hybrid(
            keys, meas, 1024, block_cells=64, threshold=0.0
        )
        assert forced_dense.n_sparse_rows == 0
        forced_sparse = build_hybrid(
            keys, meas, 1024, block_cells=64, threshold=1.01
        )
        assert forced_sparse.n_dense_rows == 0
        for layout in (forced_dense, forced_sparse):
            k, m = expand_hybrid(layout)
            assert np.array_equal(k, keys) and np.array_equal(m, meas)

    def test_sparse_before_is_prefix_of_residue(self):
        rng = np.random.default_rng(2)
        head = np.arange(0, 600, dtype=np.int64)  # dense blocks
        tail = 600 + np.sort(
            rng.choice(3496, size=300, replace=False)
        )  # sparse tail
        keys = np.concatenate([head, tail]).astype(np.int64)
        meas = rng.random(keys.shape[0])
        layout = build_hybrid(keys, meas, 4096, block_cells=64)
        assert layout.n_dense_rows > 0 and layout.n_sparse_rows > 0
        for i, bid in enumerate(layout.dense_blocks):
            want = int(
                np.searchsorted(
                    layout.sparse_keys, bid * layout.block_cells, "left"
                )
            )
            assert int(layout.sparse_before[i]) == want

    def test_roundtrip_random(self):
        rng = np.random.default_rng(3)
        for trial in range(20):
            capacity = int(rng.integers(1, 5000))
            n = int(rng.integers(0, capacity + 1))
            bc = int(rng.integers(1, 300))
            keys, meas = sorted_unique(rng, capacity, n)
            layout = build_hybrid(keys, meas, capacity, block_cells=bc)
            k, m = expand_hybrid(layout)
            assert np.array_equal(k, keys), (trial, capacity, n, bc)
            assert np.array_equal(m, meas)
            assert layout.n_dense_rows + layout.n_sparse_rows == keys.size

    def test_validation(self):
        keys = np.array([0, 5], dtype=np.int64)
        meas = np.zeros(2)
        with pytest.raises(ValueError, match="outside"):
            build_hybrid(keys, meas, capacity=5)
        with pytest.raises(ValueError, match="matching"):
            build_hybrid(keys, np.zeros(3), capacity=10)
        with pytest.raises(ValueError, match="block_cells"):
            build_hybrid(keys, meas, capacity=10, block_cells=0)

    def test_stored_bytes(self):
        keys = np.arange(128, dtype=np.int64)
        meas = np.ones(128)
        layout = build_hybrid(keys, meas, 128, block_cells=64)
        # two full dense blocks: values only, no mask, no sparse rows
        assert layout.stored_bytes() == 128 * 8


# ---------------------------------------------------------------------------
# HybridView vs the plain sorted view
# ---------------------------------------------------------------------------


class TestHybridView:
    @pytest.fixture(scope="class")
    def columns(self):
        rng = np.random.default_rng(7)
        capacity = 8192
        # heavy head + sparse tail: both block kinds present
        head = np.arange(0, 1500, dtype=np.int64)
        tail = 1500 + np.sort(
            rng.choice(capacity - 1500, size=400, replace=False)
        )
        keys = np.concatenate([head, tail]).astype(np.int64)
        meas = rng.random(keys.shape[0])
        return keys, meas, capacity

    @pytest.fixture(scope="class")
    def views(self, columns):
        keys, meas, capacity = columns
        layout = build_hybrid(keys, meas, capacity, block_cells=128)
        assert layout.n_dense_rows > 0 and layout.n_sparse_rows > 0
        hybrid = HybridView.from_layout(BASE, layout)
        plain = SortedView(BASE, keys, meas)
        return hybrid, plain

    def test_geometry(self, views, columns):
        hybrid, plain = views
        keys, _, _ = columns
        assert hybrid.nrows == plain.nrows == keys.size
        assert hybrid.n_dense_rows + hybrid.n_sparse_rows == keys.size

    def test_range_matches_sorted_view(self, views, columns):
        hybrid, plain = views
        _, _, capacity = columns
        rng = np.random.default_rng(11)
        spans = [(0, capacity - 1), (0, 0), (capacity - 1, capacity - 1)]
        for _ in range(200):
            lo = int(rng.integers(0, capacity))
            hi = int(rng.integers(lo, capacity))
            spans.append((lo, hi))
        def norm(r):
            # empty ranges may be reported at any position
            return r if r[1] > r[0] else (0, 0)

        for lo, hi in spans:
            assert norm(hybrid.range(lo, hi)) == norm(
                plain.range(lo, hi)
            ), (lo, hi)

    def test_read_matches_sorted_view(self, views):
        hybrid, plain = views
        n = hybrid.nrows
        rng = np.random.default_rng(13)
        windows = [(0, n), (0, 0), (n - 1, n)]
        for _ in range(100):
            a = int(rng.integers(0, n + 1))
            b = int(rng.integers(a, n + 1))
            windows.append((a, b))
        for a, b in windows:
            hk, hm = hybrid.read(a, b)
            pk, pm = plain.read(a, b)
            assert np.array_equal(hk, pk), (a, b)
            assert np.array_equal(hm, pm), (a, b)

    def test_range_kind(self, views):
        hybrid, _ = views
        bc = hybrid.block_cells
        dense_set = set(hybrid.blocks.tolist())
        rng = np.random.default_rng(17)
        for _ in range(100):
            lo = int(rng.integers(0, hybrid.capacity))
            hi = int(rng.integers(lo, hybrid.capacity))
            covered = set(range(lo // bc, hi // bc + 1))
            if covered <= dense_set:
                want = "dense"
            elif not (covered & dense_set):
                want = "sparse"
            else:
                want = "mixed"
            assert hybrid.range_kind(lo, hi) == want, (lo, hi)
        assert hybrid.range_kind(5, 4) == "empty"

    def test_out_of_bounds_keys(self, views):
        hybrid, plain = views
        assert hybrid.range(-10, hybrid.capacity + 10) == (0, hybrid.nrows)
        assert hybrid.range(hybrid.capacity + 1, hybrid.capacity + 5) == (0, 0)


# ---------------------------------------------------------------------------
# store format 3
# ---------------------------------------------------------------------------

QUERIES = [
    Query(group_by=(0,)),
    Query(group_by=(0, 1), filters={2: (1, 3)}),
    Query(group_by=(1,), filters={0: (2, 2), 3: (0, 1)}),
    Query(group_by=(2, 3), filters={0: (5, 5)}),
    Query(group_by=(), filters={1: (0, 4)}),
    Query(group_by=(0, 2), filters={0: (1, 6)}, having=(">=", 10.0)),
    Query(group_by=(), filters={d: (1, 1) for d in range(4)}),
]


@pytest.fixture(scope="module")
def cube():
    rel = make_relation(4000, CARDS, seed=21, alphas=(1.2, 0.9, 0.5, 0.2))
    return build_data_cube(rel, CARDS, MachineSpec(p=2))


@pytest.fixture(scope="module")
def paths(cube, tmp_path_factory):
    root = tmp_path_factory.mktemp("fmt3")
    p2 = CubeStore.save(cube, str(root / "f2"), format=2)
    p3 = CubeStore.save(cube, str(root / "f3"), format=3, block_cells=64)
    return p2, p3


class TestStoreV3:
    def test_load_roundtrip_bit_identical(self, cube, paths):
        _, p3 = paths
        back = CubeStore.load(p3)
        for rank, rank_views in enumerate(cube.rank_views):
            for view, vd in rank_views.items():
                got = back.rank_views[rank][view]
                assert np.array_equal(got.keys, vd.keys), (rank, view)
                assert np.array_equal(got.measure, vd.measure)

    def test_manifest_autodetect_and_geometry(self, paths):
        _, p3 = paths
        handle = CubeStore.open(p3)
        assert handle.block_cells == 64
        views = handle.sorted_views
        assert all(isinstance(sv, HybridView) for sv in views.values())
        base = views[BASE]
        # the fixture data produces a genuine mix in the base view
        assert base.n_dense_blocks > 0 and base.n_sparse_rows > 0

    def test_default_block_cells(self, cube, tmp_path):
        path = CubeStore.save(cube, str(tmp_path / "dflt"), format=3)
        assert CubeStore.open(path).block_cells == DEFAULT_BLOCK_CELLS

    def test_audit_ok(self, paths):
        _, p3 = paths
        report = audit_cube(CubeStore.open(p3).cube)
        assert report.ok, report.issues

    def test_answers_identical_across_formats_and_paths(self, paths):
        p2, p3 = paths
        h2, h3 = CubeStore.open(p2), CubeStore.open(p3)
        engines = [
            h2.query_engine(index=True),
            h2.query_engine(index=False),
            h3.query_engine(index=True),
            h3.query_engine(index=False),
        ]
        for query in QUERIES:
            answers = [e.answer(query) for e in engines]
            for other in answers[1:]:
                assert np.array_equal(answers[0].dims, other.dims), query
                assert np.array_equal(
                    answers[0].measure, other.measure
                ), query

    def test_explain_reports_dense_path(self, paths):
        _, p3 = paths
        engine = CubeStore.open(p3).query_engine()
        # all-dims point at the hot corner: key 0 lives in a dense block
        plan = engine.explain(
            Query(group_by=(), filters={d: (0, 0) for d in range(4)})
        )
        assert plan.access_path == "dense"
        # tiny views are fully dense: even an unfiltered group-by
        # resolves by offset arithmetic
        assert engine.explain(Query(group_by=(3,))).access_path == "dense"
        # with the index disabled everything degrades to a scan
        noindex = CubeStore.open(p3).query_engine(index=False)
        assert noindex.explain(Query(group_by=(3,))).access_path == "scan"

    def test_meter_charges_hybrid_reads(self, paths):
        _, p3 = paths
        handle = CubeStore.open(p3)
        engine = handle.query_engine()
        engine.answer(Query(group_by=(), filters={d: (0, 0) for d in range(4)}))
        assert handle.meter.bytes_touched > 0
        assert handle.meter.maps_opened > 0

    def test_service_on_format3_store(self, cube, paths):
        _, p3 = paths
        reference = QueryEngine(cube, index=False)
        with QueryService(p3, workers=2) as service:
            results = service.answer_many(QUERIES, timeout=90)
        for query, got in zip(QUERIES, results):
            want = reference.answer(query)
            assert np.array_equal(want.dims, got.dims), query
            assert np.array_equal(want.measure, got.measure), query
