"""Tests for the synthetic data generator and Zipf sampler."""

import numpy as np
import pytest

from repro.data.generator import (
    PAPER_CARDINALITIES,
    DatasetSpec,
    generate_dataset,
    paper_preset,
)
from repro.data.zipf import (
    scramble_labels,
    skew_profile,
    zipf_pmf,
    zipf_sample,
)


class TestZipf:
    def test_pmf_sums_to_one(self):
        for card, alpha in [(10, 0.0), (100, 1.0), (5, 3.0)]:
            assert zipf_pmf(card, alpha).sum() == pytest.approx(1.0)

    def test_pmf_monotone_for_positive_alpha(self):
        pmf = zipf_pmf(20, 1.5)
        assert np.all(np.diff(pmf) < 0)

    def test_alpha_zero_uniform(self):
        pmf = zipf_pmf(8, 0.0)
        assert np.allclose(pmf, 1 / 8)

    def test_sample_range(self):
        rng = np.random.default_rng(0)
        s = zipf_sample(17, 2.0, 5000, rng)
        assert s.min() >= 0 and s.max() < 17
        assert s.dtype == np.int64

    def test_sample_skew_concentrates_mass(self):
        rng = np.random.default_rng(1)
        heavy = zipf_sample(100, 3.0, 10_000, rng)
        frac_zero = (heavy == 0).mean()
        assert frac_zero > 0.7  # alpha=3: rank-1 value dominates

    def test_sample_uniform_spreads_mass(self):
        rng = np.random.default_rng(2)
        flat = zipf_sample(100, 0.0, 10_000, rng)
        assert (flat == 0).mean() < 0.05

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(5, -1.0)
        with pytest.raises(ValueError):
            zipf_sample(5, 1.0, -1, rng)

    def test_zero_size(self):
        rng = np.random.default_rng(0)
        assert zipf_sample(5, 1.0, 0, rng).size == 0


class TestSkewProfile:
    def test_profiles_shape_and_bounds(self):
        for profile in ("mixed", "ramp", "head", "flat"):
            alphas = skew_profile(6, profile, alpha_hi=1.4, alpha_lo=0.2)
            assert len(alphas) == 6
            assert all(0.2 <= a <= 1.4 for a in alphas)

    def test_mixed_is_seeded_and_mixed(self):
        a = skew_profile(8, "mixed", seed=5)
        b = skew_profile(8, "mixed", seed=5)
        c = skew_profile(8, "mixed", seed=6)
        assert a == b
        assert a != c  # different shuffle
        assert len(set(a)) == 2  # both levels present

    def test_ramp_monotone(self):
        alphas = skew_profile(5, "ramp", alpha_hi=2.0, alpha_lo=0.0)
        assert list(alphas) == sorted(alphas, reverse=True)
        assert alphas[0] == 2.0 and alphas[-1] == 0.0

    def test_head(self):
        alphas = skew_profile(4, "head", alpha_hi=3.0, alpha_lo=0.1)
        assert alphas == (3.0, 0.1, 0.1, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="profile"):
            skew_profile(4, "bogus")
        with pytest.raises(ValueError):
            skew_profile(0)
        with pytest.raises(ValueError):
            skew_profile(4, alpha_hi=0.1, alpha_lo=0.9)

    def test_feeds_dataset_spec(self):
        cards = (64, 32, 16, 8)
        alphas = skew_profile(4, "mixed", seed=1)
        rel = generate_dataset(
            DatasetSpec(n=500, cardinalities=cards, alphas=alphas)
        )
        assert rel.nrows == 500


class TestScrambleLabels:
    def test_breaks_frequency_rank_order(self):
        """Zipf codes arrive frequency-ranked; a scramble must not
        leave code 0 the most frequent in every column."""
        rng = np.random.default_rng(3)
        cards = (50, 40)
        dims = np.column_stack(
            [zipf_sample(c, 2.0, 4000, rng) for c in cards]
        )
        top_before = [np.bincount(dims[:, c]).argmax() for c in range(2)]
        assert top_before == [0, 0]
        out = scramble_labels(dims, cards, seed=9)
        top_after = [
            np.bincount(out[:, c], minlength=cards[c]).argmax()
            for c in range(2)
        ]
        assert top_after != [0, 0]

    def test_is_a_relabelling(self):
        """Same multiset of per-column counts, deterministic per seed."""
        rng = np.random.default_rng(4)
        dims = np.column_stack([zipf_sample(9, 1.0, 1000, rng)] * 2)
        a = scramble_labels(dims, (9, 9), seed=1)
        b = scramble_labels(dims, (9, 9), seed=1)
        assert np.array_equal(a, b)
        for c in range(2):
            before = sorted(np.bincount(dims[:, c], minlength=9))
            after = sorted(np.bincount(a[:, c], minlength=9))
            assert before == after

    def test_spec_scramble_knob(self):
        plain = DatasetSpec(800, (32, 16), (2.0, 1.0), seed=11)
        scrambled = DatasetSpec(
            800, (32, 16), (2.0, 1.0), seed=11, scramble=True
        )
        a, b = generate_dataset(plain), generate_dataset(scrambled)
        # same measures, relabelled dims
        assert np.array_equal(a.measure, b.measure)
        assert not np.array_equal(a.dims, b.dims)
        for c in range(2):
            assert sorted(np.bincount(a.dims[:, c], minlength=32)) == \
                sorted(np.bincount(b.dims[:, c], minlength=32))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="expected"):
            scramble_labels(np.zeros((4, 3), dtype=np.int64), (8, 8))


class TestDatasetSpec:
    def test_valid(self):
        spec = DatasetSpec(100, (8, 4), (0.0, 1.0))
        assert spec.d == 2

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DatasetSpec(10, (8, 4), (0.0,))

    def test_rejects_increasing_cardinalities(self):
        with pytest.raises(ValueError, match="non-increasing"):
            DatasetSpec(10, (4, 8), (0.0, 0.0))

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DatasetSpec(-1, (4,), (0.0,))
        with pytest.raises(ValueError):
            DatasetSpec(10, (0,), (0.0,))
        with pytest.raises(ValueError):
            DatasetSpec(10, (4,), (-1.0,))


class TestGenerate:
    def test_shapes_and_ranges(self):
        spec = DatasetSpec(500, (8, 4, 2), (0.0, 1.0, 0.0), seed=3)
        rel = generate_dataset(spec)
        assert rel.nrows == 500 and rel.width == 3
        for col, card in enumerate(spec.cardinalities):
            assert rel.dims[:, col].min() >= 0
            assert rel.dims[:, col].max() < card

    def test_deterministic_under_seed(self):
        spec = DatasetSpec(100, (8, 4), (0.0, 0.0), seed=42)
        a, b = generate_dataset(spec), generate_dataset(spec)
        assert a.same_content(b)
        other = generate_dataset(
            DatasetSpec(100, (8, 4), (0.0, 0.0), seed=43)
        )
        assert not a.same_content(other)


class TestPaperPresets:
    def test_default_is_p8(self):
        spec = paper_preset(1000)
        assert spec.cardinalities == PAPER_CARDINALITIES
        assert spec.alphas == (0.0,) * 8

    def test_mixes(self):
        assert paper_preset(10, mix="A").cardinalities == (256,) * 8
        assert paper_preset(10, mix="C").cardinalities == (16,) * 8
        d = paper_preset(10, mix="D")
        assert d.alphas[0] == 3.0 and d.alphas[1] == 0.0

    def test_dim_override(self):
        spec = paper_preset(10, d=6)
        assert spec.d == 6
        assert spec.cardinalities == (256,) * 6

    def test_scalar_alpha_broadcast(self):
        spec = paper_preset(10, alpha=2.0)
        assert spec.alphas == (2.0,) * 8

    def test_alpha_vector(self):
        spec = paper_preset(10, alpha=[1.0] * 8)
        assert spec.alphas == (1.0,) * 8
        with pytest.raises(ValueError):
            paper_preset(10, alpha=[1.0, 2.0])

    def test_unknown_mix(self):
        with pytest.raises(ValueError):
            paper_preset(10, mix="Z")
