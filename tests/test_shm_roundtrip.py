"""Encode/decode matrix for the shared-memory data plane (PR: zero-copy
pooled arenas).

Exercises :mod:`repro.mpi.shm` across array layouts, dtypes and plane
modes: empty arrays, non-contiguous slices, Fortran order,
float32/int64/bool, an array referenced twice encoding to one segment,
sub-threshold payloads staying inline, the pooled divert threshold, lane
batching into a single segment, and the zero-copy lease/materialize
contract — plus an end-to-end pass on both execution backends.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.config import MachineSpec
from repro.mpi import shm
from repro.mpi.engine import run_spmd

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)

BACKENDS = ["thread", pytest.param("process", marks=requires_fork)]

PLANE_MODES = [
    pytest.param(True, True, id="pooled-zerocopy"),
    pytest.param(True, False, id="pooled-copy"),
    pytest.param(False, True, id="unpooled-zerocopy"),
    pytest.param(False, False, id="unpooled-copy"),
]


@pytest.fixture
def plane_factory():
    planes = []

    def make(pooled: bool, zero_copy: bool) -> shm.DataPlane:
        plane = shm.DataPlane(pooled=pooled, zero_copy=zero_copy)
        planes.append(plane)
        return plane

    yield make
    for plane in planes:
        plane.close()  # unlinks pooled and in-flight segments alike


def _roundtrip(plane: shm.DataPlane, obj):
    blob = plane.encode(obj)
    return blob, plane.decode(blob)


ARRAY_CASES = [
    pytest.param(np.array([], dtype=np.float64), id="empty-float64"),
    pytest.param(np.zeros((0, 7), dtype=np.int32), id="empty-2d"),
    pytest.param(
        np.arange(6000, dtype=np.int64).reshape(60, 100)[::3, ::7],
        id="non-contiguous",
    ),
    pytest.param(
        np.asfortranarray(np.arange(6000, dtype=np.float64).reshape(60, 100)),
        id="fortran-order",
    ),
    pytest.param(np.linspace(0, 1, 3000, dtype=np.float32), id="float32"),
    pytest.param(np.arange(3000, dtype=np.int64) * -7, id="int64"),
    pytest.param((np.arange(3000) % 3 == 0), id="bool"),
]


class TestRoundtripMatrix:
    @pytest.mark.parametrize("pooled,zero_copy", PLANE_MODES)
    @pytest.mark.parametrize("arr", ARRAY_CASES)
    def test_array_roundtrips(self, plane_factory, pooled, zero_copy, arr):
        plane = plane_factory(pooled, zero_copy)
        _, out = _roundtrip(plane, {"payload": arr, "tag": "x"})
        got = out["payload"]
        assert got.dtype == arr.dtype
        assert got.shape == arr.shape
        np.testing.assert_array_equal(got, arr)
        assert out["tag"] == "x"

    @pytest.mark.parametrize("pooled,zero_copy", PLANE_MODES)
    def test_twice_referenced_array_one_entry(
        self, plane_factory, pooled, zero_copy
    ):
        plane = plane_factory(pooled, zero_copy)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        blob, out = _roundtrip(plane, [arr, {"again": arr}, arr])
        # The pickler memoises by identity: one table entry, and under
        # the packed layout one segment, no matter how often it appears.
        assert len(blob.arrays) == 1
        if pooled:
            assert len(blob.segments) == 1
        np.testing.assert_array_equal(out[0], arr)
        np.testing.assert_array_equal(out[1]["again"], arr)
        if zero_copy:
            # All three references decode to the *same* view object.
            assert out[0] is out[2]

    @pytest.mark.parametrize("pooled,zero_copy", PLANE_MODES)
    def test_sub_threshold_stays_inline(
        self, plane_factory, pooled, zero_copy
    ):
        plane = plane_factory(pooled, zero_copy)
        tiny = np.arange(4, dtype=np.float64)  # 32 bytes
        blob, out = _roundtrip(plane, ("ctl", tiny, 5))
        assert blob.segments == ()
        assert blob.arrays == ()
        np.testing.assert_array_equal(out[1], tiny)
        # Inline arrays are ordinary private copies even in zero-copy
        # mode — there is no segment to alias.
        out[1][0] = 99.0

    def test_pooled_divert_threshold(self, plane_factory):
        """Arrays between the pooled and legacy thresholds divert only
        when the arena is pooled (a lease is a memcpy; a dedicated
        segment is not worth it at that size)."""
        mid = np.zeros(shm.SHM_MIN_BYTES // 4, dtype=np.uint8)
        assert shm.SHM_MIN_BYTES_POOLED <= mid.nbytes < shm.SHM_MIN_BYTES
        pooled_blob = plane_factory(True, True).encode(mid)
        unpooled_blob = plane_factory(False, False).encode(mid)
        assert len(pooled_blob.segments) == 1
        assert unpooled_blob.segments == ()


class TestPackedLayout:
    def test_lanes_share_one_segment(self, plane_factory):
        plane = plane_factory(True, True)
        lanes = [
            np.arange(shm.SHM_MIN_BYTES, dtype=np.int64) + j
            for j in range(4)
        ]
        lanes[2] = None
        blobs = plane.encode_lanes(lanes)
        assert blobs[2] is None
        names = {b.segments[0] for b in blobs if b is not None}
        assert len(names) == 1  # one segment for the whole collective
        for j, lane in enumerate(lanes):
            if lane is None:
                continue
            np.testing.assert_array_equal(plane.decode(blobs[j]), lane)

    def test_unpooled_lanes_get_own_segments(self, plane_factory):
        plane = plane_factory(False, False)
        lanes = [
            np.arange(shm.SHM_MIN_BYTES, dtype=np.int64) + j
            for j in range(3)
        ]
        blobs = plane.encode_lanes(lanes)
        names = {b.segments[0] for b in blobs}
        assert len(names) == 3  # legacy: segment per lane-array

    def test_pool_reuses_after_recycle(self, plane_factory):
        plane = plane_factory(True, True)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        first = plane.encode(arr)
        plane.recycle(first.segments)
        second = plane.encode(arr)
        assert second.segments == first.segments  # same pooled segment
        stats = plane.stats()
        assert stats["segments_reused"] == 1
        assert stats["segments_created"] == 1

    def test_unpooled_recycle_unlinks(self, plane_factory):
        import os

        plane = plane_factory(False, True)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        blob = plane.encode(arr)
        name = blob.segments[0]
        plane.recycle(blob.segments)
        assert not os.path.exists(os.path.join("/dev/shm", name))


class TestZeroCopyContract:
    def test_views_are_readonly_and_alias(self, plane_factory):
        plane = plane_factory(True, True)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        blob, out = _roundtrip(plane, arr)
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0] = 1
        # The view aliases the segment the creator wrote.
        assert blob.segments[0] in plane.held()

    def test_materialize_detaches(self, plane_factory):
        plane = plane_factory(True, True)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        _, out = _roundtrip(plane, arr)
        owned = shm.materialize(out)
        assert owned.flags.writeable
        owned[0] = -1
        np.testing.assert_array_equal(out[1:], owned[1:])

    def test_copy_mode_returns_private_arrays(self, plane_factory):
        plane = plane_factory(True, False)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        _, out = _roundtrip(plane, arr)
        assert out.flags.writeable
        out[0] = 123  # must not require materialize()
        plane.sweep()
        assert plane.held() == []  # copies pin nothing

    def test_release_tracks_garbage_collection(self, plane_factory):
        plane = plane_factory(True, True)
        arr = np.arange(shm.SHM_MIN_BYTES, dtype=np.int64)
        blob = plane.encode(arr)
        out = plane.decode(blob)
        name = blob.segments[0]
        assert name in plane.held()
        del out
        plane.sweep()
        assert name not in plane.held()


def _mixed_payload_prog(c, _):
    rows = np.arange(2048, dtype=np.int64).reshape(-1, 2) + c.rank
    slots = c.allgather({"rows": rows, "rank": c.rank})
    total = int(
        sum(np.asarray(s["rows"], dtype=np.int64).sum() for s in slots)
    )
    empty = c.bcast(np.array([], dtype=np.float32) if c.rank == 0 else None)
    lanes = [rows[j :: c.size].copy() for j in range(c.size)]
    mine = c.alltoall(lanes)
    got = int(sum(np.asarray(m, dtype=np.int64).sum() for m in mine))
    return total, got, int(empty.size)


class TestEndToEnd:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("pooled,zero_copy", PLANE_MODES)
    def test_collectives_roundtrip(self, backend, pooled, zero_copy):
        spec = MachineSpec(
            p=3,
            backend=backend,
            compute_scale=0.0,
            shm_pool=pooled,
            shm_zero_copy=zero_copy,
        )
        outcome = run_spmd(_mixed_payload_prog, spec, args=(None,))
        totals = {t for t, _, _ in outcome.rank_results}
        assert len(totals) == 1  # every rank saw the same global sum
        for total, got, empty_size in outcome.rank_results:
            assert empty_size == 0
            assert got > 0
