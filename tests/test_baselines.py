"""Tests for the baselines: reference, sequential, naive, local-tree,
one-dimensional partitioning — plus the performance relations between them
that the paper's arguments rely on."""

import numpy as np
import pytest

from repro.baselines import (
    local_tree_cube,
    naive_sequential_cube,
    onedim_partition_cube,
    reference_cube,
    reference_view,
    sequential_cube,
)
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.views import all_views
from repro.storage.table import Relation
from tests.conftest import make_relation

CARDS = (10, 7, 5, 3)


@pytest.fixture(scope="module")
def dataset():
    return make_relation(4000, CARDS, seed=8)


@pytest.fixture(scope="module")
def oracle(dataset):
    return reference_cube(dataset, CARDS)


class TestReference:
    def test_all_view_single_row(self, dataset):
        rel = reference_view(dataset, CARDS, ())
        assert rel.nrows == 1
        assert rel.measure[0] == pytest.approx(dataset.measure.sum())

    def test_top_view_distinct_rows(self, dataset):
        top = tuple(range(len(CARDS)))
        rel = reference_view(dataset, CARDS, top)
        assert rel.nrows == len(set(map(tuple, dataset.dims.tolist())))

    def test_empty_relation(self):
        rel = reference_view(Relation.empty(2), (4, 3), (0,))
        assert rel.nrows == 0

    def test_rejects_unknown_agg(self, dataset):
        with pytest.raises(ValueError):
            reference_view(dataset, CARDS, (0,), agg="p99")

    def test_subset_of_views(self, dataset):
        out = reference_cube(dataset, CARDS, views=[(0,), (1, 2)])
        assert set(out) == {(0,), (1, 2)}


class TestSequential:
    def test_matches_reference(self, dataset, oracle):
        cube = sequential_cube(dataset, CARDS)
        assert cube.view_count == 16
        for view, want in oracle.items():
            assert cube.view_relation(view).same_content(want), view

    def test_partial_sequential(self, dataset, oracle):
        cube = sequential_cube(dataset, CARDS, selected=[(0, 2), ()])
        assert set(cube.views) == {(0, 2), ()}
        for view in cube.views:
            assert cube.view_relation(view).same_content(oracle[view])

    def test_no_communication(self, dataset):
        cube = sequential_cube(dataset, CARDS)
        assert cube.metrics.comm_bytes == 0

    def test_count_aggregate(self, dataset):
        cube = sequential_cube(
            dataset, CARDS, config=CubeConfig(agg="count")
        )
        want = reference_cube(dataset, CARDS, agg="count")
        for view, rel in want.items():
            assert cube.view_relation(view).same_content(rel)


class TestNaive:
    def test_matches_reference(self, dataset, oracle):
        cube = naive_sequential_cube(
            dataset, CARDS, selected=[(0,), (1, 2), ()]
        )
        for view in cube.views:
            assert cube.view_relation(view).same_content(oracle[view])

    def test_full_cube_by_default(self, dataset):
        cube = naive_sequential_cube(dataset, CARDS)
        assert cube.view_count == 16

    def test_slower_than_pipesort_for_full_cube(self, dataset):
        """The whole point of schedule trees: sharing beats re-sorting raw
        data 2^d times."""
        naive = naive_sequential_cube(dataset, CARDS)
        pipe = sequential_cube(dataset, CARDS)
        assert pipe.metrics.simulated_seconds < naive.metrics.simulated_seconds

    def test_competitive_for_tiny_selections(self, dataset):
        """Section 4.1: for a handful of views the naive method is in the
        same league (no partition machinery to amortise)."""
        selected = [(0,), (3,)]
        naive = naive_sequential_cube(dataset, CARDS, selected=selected)
        pipe = sequential_cube(dataset, CARDS, selected=selected)
        assert (
            naive.metrics.simulated_seconds
            < pipe.metrics.simulated_seconds * 3
        )


class TestLocalTree:
    def test_matches_reference(self, dataset, oracle):
        cube = local_tree_cube(dataset, CARDS, MachineSpec(p=4))
        for view, want in oracle.items():
            assert cube.view_relation(view).same_content(want), view

    def test_slower_than_global_tree(self):
        """Figure 7's conclusion: re-sorting views into a common order
        before the merge costs more than living with P0's tree.  Uses the
        paper's d=8 vector: deeper lattices produce many more
        non-canonical pipeline orders, so the re-sort penalty is far
        above measurement noise."""
        cards = (64, 32, 16, 12, 8, 6, 4, 3)
        rel = make_relation(15_000, cards, seed=8)
        spec = MachineSpec(p=8)
        local = local_tree_cube(rel, cards, spec)
        global_ = build_data_cube(rel, cards, spec)
        assert (
            global_.metrics.simulated_seconds
            < local.metrics.simulated_seconds
        )
        resort = sum(
            v for k, v in local.metrics.phase_seconds.items()
            if "resort" in k
        )
        assert resort > 0

    def test_resort_phase_present(self, dataset):
        cube = local_tree_cube(dataset, CARDS, MachineSpec(p=4))
        assert any("resort" in k for k in cube.metrics.phase_seconds)


class TestOneDim:
    def test_matches_reference(self, dataset, oracle):
        cube = onedim_partition_cube(dataset, CARDS, MachineSpec(p=4))
        for view, want in oracle.items():
            assert cube.view_relation(view).same_content(want), view

    def test_skewed_leading_dim_matches_reference(self):
        cards = (8, 6, 4)
        rel = make_relation(3000, cards, seed=4, alphas=(3.0, 0.0, 0.0))
        cube = onedim_partition_cube(rel, cards, MachineSpec(p=4))
        want = reference_cube(rel, cards)
        for view, w in want.items():
            assert cube.view_relation(view).same_content(w), view

    def test_skew_destroys_balance(self):
        """Section 2.2's argument: partitioning on D0 caps parallelism by
        |D0|'s value distribution."""
        cards = (8, 6, 4)
        rel = make_relation(4000, cards, seed=4, alphas=(3.0, 0.0, 0.0))
        cube = onedim_partition_cube(rel, cards, MachineSpec(p=4))
        top = (0, 1, 2)
        dist = cube.distribution(top).astype(float)
        # the heaviest rank holds the lion's share
        assert dist.max() / dist.sum() > 0.5

    def test_main_algorithm_balances_same_data(self):
        cards = (8, 6, 4)
        rel = make_relation(4000, cards, seed=4, alphas=(3.0, 0.0, 0.0))
        cube = build_data_cube(rel, cards, MachineSpec(p=4))
        top = (0, 1, 2)
        dist = cube.distribution(top).astype(float)
        assert dist.max() / dist.sum() < 0.5


class TestSpeedupRelations:
    def test_parallel_beats_sequential(self):
        # needs enough local computation to amortise latency (the paper
        # makes the same point about small problem sizes)
        cards = (16, 12, 8, 6, 4)
        rel = make_relation(30_000, cards, seed=2)
        seq = sequential_cube(rel, cards)
        par = build_data_cube(rel, cards, MachineSpec(p=8))
        speedup = seq.metrics.simulated_seconds / par.metrics.simulated_seconds
        assert speedup > 2.0

    def test_speedup_grows_with_p(self):
        cards = (16, 12, 8, 6, 4)
        rel = make_relation(30_000, cards, seed=2)
        t2 = build_data_cube(rel, cards, MachineSpec(p=2)).metrics
        t8 = build_data_cube(rel, cards, MachineSpec(p=8)).metrics
        assert t8.simulated_seconds < t2.simulated_seconds
