"""Tests for the named example datasets."""

import pytest

from repro.data.datasets import retail_sales, weblog_hits


class TestNamedDatasets:
    @pytest.mark.parametrize("factory", [retail_sales, weblog_hits])
    def test_generates_valid_relation(self, factory):
        ds = factory(n=500)
        rel = ds.generate()
        assert rel.nrows == 500
        assert rel.width == len(ds.dimension_names)
        for col, card in enumerate(ds.cardinalities):
            assert rel.dims[:, col].max() < card

    def test_cardinalities_paper_ordered(self):
        for ds in (retail_sales(10), weblog_hits(10)):
            cards = list(ds.cardinalities)
            assert cards == sorted(cards, reverse=True)

    def test_dim_index(self):
        ds = retail_sales(10)
        assert ds.dim_index("store") == 2
        with pytest.raises(KeyError):
            ds.dim_index("nonexistent")

    def test_view_of(self):
        ds = retail_sales(10)
        view = ds.view_of("region", "channel")
        assert view == (5, 6)
        assert ds.view_of() == ()

    def test_deterministic(self):
        a = retail_sales(200, seed=9).generate()
        b = retail_sales(200, seed=9).generate()
        assert a.same_content(b)

    def test_skew_is_real(self):
        """The weblog URLs are declared heavily skewed; verify."""
        rel = weblog_hits(n=5000).generate()
        url_col = rel.dims[:, 0]
        assert (url_col == 0).mean() > 0.2  # rank-0 URL dominates
