"""Tests for repro.core.viewdata.ViewData and codec_for_order."""

import numpy as np
import pytest

from repro.core.viewdata import ViewData, codec_for_order
from repro.storage.codec import KeyCodec


CARDS = (8, 6, 4, 3)


class TestCodecForOrder:
    def test_permuted_order(self):
        codec = codec_for_order((2, 0), CARDS)
        assert codec.cardinalities.tolist() == [4, 8]

    def test_identity_order(self):
        codec = codec_for_order((0, 1, 2, 3), CARDS)
        assert codec.cardinalities.tolist() == list(CARDS)

    def test_empty_order(self):
        assert codec_for_order((), CARDS).width == 0


class TestViewData:
    def make(self, order, rows):
        codec = codec_for_order(order, CARDS)
        dims = np.asarray(rows, dtype=np.int64).reshape(len(rows), len(order))
        keys = np.sort(codec.pack(dims)) if len(order) else np.zeros(
            len(rows), dtype=np.int64
        )
        return ViewData(order, keys, np.arange(len(rows), dtype=np.float64))

    def test_view_is_canonical(self):
        data = self.make((2, 0), [[1, 3], [2, 5]])
        assert data.view == (0, 2)

    def test_nrows_nbytes(self):
        data = self.make((0,), [[1], [2], [3]])
        assert data.nrows == 3
        assert data.nbytes == 3 * 16

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            ViewData((0,), np.zeros(2, dtype=np.int64), np.zeros(3))

    def test_empty(self):
        data = ViewData.empty((1, 3))
        assert data.nrows == 0
        assert data.view == (1, 3)

    def test_is_sorted(self):
        good = ViewData((0,), np.array([1, 2, 2], dtype=np.int64), np.ones(3))
        bad = ViewData((0,), np.array([2, 1], dtype=np.int64), np.ones(2))
        assert good.is_sorted()
        assert not bad.is_sorted()

    def test_to_relation_reorders_columns(self):
        """A view produced in permuted order must materialise with
        canonical column order."""
        order = (2, 0)  # C-major pipeline order
        codec = codec_for_order(order, CARDS)
        dims_in_order = np.array([[0, 5], [3, 1]], dtype=np.int64)
        keys = codec.pack(dims_in_order)
        data = ViewData(order, keys, np.array([10.0, 20.0]))
        rel = data.to_relation(CARDS)
        # canonical order is (0, 2): columns swapped back
        assert rel.dims.tolist() == [[5, 0], [1, 3]]
        assert rel.measure.tolist() == [10.0, 20.0]

    def test_to_relation_roundtrip_random(self):
        rng = np.random.default_rng(0)
        order = (3, 1, 0)
        codec = codec_for_order(order, CARDS)
        dims = np.column_stack(
            [rng.integers(0, CARDS[i], 50) for i in order]
        )
        keys = codec.pack(dims)
        srt = np.argsort(keys)
        data = ViewData(order, keys[srt], rng.random(50)[srt])
        rel = data.to_relation(CARDS)
        assert rel.width == 3
        # repacking the canonical columns under the canonical codec and
        # sorting must give a permutation of the original keys
        canon_codec = KeyCodec([CARDS[i] for i in (0, 1, 3)])
        back = canon_codec.pack(rel.dims)
        assert back.size == 50

    def test_all_view_to_relation(self):
        data = ViewData((), np.zeros(1, dtype=np.int64), np.array([42.0]))
        rel = data.to_relation(CARDS)
        assert rel.width == 0
        assert rel.measure.tolist() == [42.0]

    def test_duplicate_dimension_in_order_rejected(self):
        data = ViewData((0, 0), np.zeros(1, dtype=np.int64), np.ones(1))
        with pytest.raises(ValueError):
            data.to_relation(CARDS)
