"""Public-surface sanity: everything API.md lists imports and the
packages' __all__ entries resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.mpi",
    "repro.storage",
    "repro.core",
    "repro.olap",
    "repro.baselines",
    "repro.data",
    "repro.bench",
]

MODULES = [
    "repro.config",
    "repro.core.aggregate",
    "repro.core.audit",
    "repro.core.checkpoint",
    "repro.core.cube",
    "repro.core.estimate",
    "repro.core.lattice",
    "repro.core.matching",
    "repro.core.merge",
    "repro.core.overlap",
    "repro.core.partial",
    "repro.core.partitions",
    "repro.core.pipesort",
    "repro.core.sample_sort",
    "repro.core.sampling",
    "repro.core.validate",
    "repro.core.viewdata",
    "repro.core.views",
    "repro.mpi.backends",
    "repro.mpi.clock",
    "repro.mpi.comm",
    "repro.mpi.engine",
    "repro.mpi.errors",
    "repro.mpi.faults",
    "repro.mpi.shm",
    "repro.mpi.stats",
    "repro.mpi.trace",
    "repro.mpi.whatif",
    "repro.storage.codec",
    "repro.storage.disk",
    "repro.storage.diskarray",
    "repro.storage.external_sort",
    "repro.storage.relio",
    "repro.storage.runs",
    "repro.storage.scan",
    "repro.storage.table",
    "repro.olap.advisor",
    "repro.olap.cache",
    "repro.olap.query",
    "repro.olap.refresh",
    "repro.olap.store",
    "repro.baselines.local_tree",
    "repro.baselines.molap",
    "repro.baselines.naive",
    "repro.baselines.onedim",
    "repro.baselines.reference",
    "repro.baselines.sequential",
    "repro.data.datasets",
    "repro.data.generator",
    "repro.data.zipf",
    "repro.bench.calibrate",
    "repro.bench.experiments",
    "repro.bench.export",
    "repro.bench.harness",
    "repro.bench.plotting",
    "repro.bench.reporting",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists {symbol}"


@pytest.mark.parametrize("name", MODULES)
def test_module_docstrings(name):
    """Every module carries real documentation (not a stub)."""
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, name


def test_version():
    import repro

    assert repro.__version__
