"""Checkpointed recovery tests (PR: robustness tentpole).

The recovery contract: a build that loses a rank mid-flight and is
restarted by :class:`RecoveryPolicy` must produce a cube *bit-identical*
to the fault-free build, while its metrics honestly include the wasted
work (``attempts``, ``recovered_seconds``).  With a checkpoint directory
the restart resumes from the last completed dimension iteration instead
of from scratch.  The chaos matrix pins this down for every fault kind
on both backends.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec, RecoveryPolicy
from repro.core.checkpoint import RankCheckpoint
from repro.core.cube import build_data_cube
from repro.mpi.errors import (
    CheckpointError,
    CollectiveMisuse,
    CorruptPayload,
    DiskFull,
    InjectedFault,
    MPIError,
    RankFailure,
)
from repro.mpi.faults import FaultPlan

from .conftest import make_relation

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)

BACKENDS = ["thread", pytest.param("process", marks=requires_fork)]

CARDS = (8, 6, 5)
N_ROWS = 1500


@pytest.fixture(scope="module")
def relation():
    return make_relation(N_ROWS, CARDS, seed=17)


def det_spec(backend, p=2):
    return MachineSpec(p=p, backend=backend, compute_scale=0.0)


def build(relation, backend, p=2, **kw):
    return build_data_cube(
        relation, CARDS, det_spec(backend, p), CubeConfig(), **kw
    )


def fingerprint(cube):
    """Bit-level digest of every rank's piece of every view."""
    h = hashlib.sha256()
    for rv in cube.rank_views:
        for view in sorted(rv, key=lambda v: (len(v), v)):
            vd = rv[view]
            h.update(repr(view).encode())
            h.update(np.ascontiguousarray(vd.keys).tobytes())
            h.update(np.ascontiguousarray(vd.measure).tobytes())
    return h.hexdigest()


class TestRankCheckpoint:
    def _payload(self, tag):
        from repro.core.viewdata import ViewData

        vd = ViewData(
            (0,), np.arange(4, dtype=np.int64), np.full(4, float(tag))
        )
        return {
            "views": {(0,): vd},
            "root": vd,
            "root_i": 0,
            "report": None,
            "tree": None,
        }

    def test_roundtrip(self, tmp_path):
        ck = RankCheckpoint(str(tmp_path), rank=3)
        assert ck.last_complete() == -1
        rows = ck.save(0, 2, self._payload(1), meters={"phase": "x"})
        assert rows == 8  # view rows + root rows
        ck.save(1, 1, self._payload(2))
        assert ck.last_complete() == 1
        payload, loaded_rows = ck.load(1)
        assert loaded_rows == 8
        np.testing.assert_array_equal(
            payload["views"][(0,)].measure, np.full(4, 2.0)
        )
        assert ck.entry(0)["meters"] == {"phase": "x"}

    def test_resave_truncates_suffix(self, tmp_path):
        ck = RankCheckpoint(str(tmp_path), rank=0)
        for ordinal in range(3):
            ck.save(ordinal, ordinal, self._payload(ordinal))
        ck.save(1, 1, self._payload(9))  # a retry redoing iteration 1
        assert ck.last_complete() == 1
        assert ck.entry(2) is None

    def test_corruption_truncates_chain(self, tmp_path):
        ck = RankCheckpoint(str(tmp_path), rank=0)
        for ordinal in range(3):
            ck.save(ordinal, ordinal, self._payload(ordinal))
        target = os.path.join(ck.dir, "iter001.ckpt")
        blob = bytearray(open(target, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(target, "wb") as fh:
            fh.write(bytes(blob))
        # Damage mid-chain: only iteration 0 remains usable.
        assert ck.last_complete() == 0
        with pytest.raises(CheckpointError, match="CRC"):
            ck.load(1)

    def test_missing_file(self, tmp_path):
        ck = RankCheckpoint(str(tmp_path), rank=0)
        ck.save(0, 0, self._payload(0))
        os.unlink(os.path.join(ck.dir, "iter000.ckpt"))
        assert ck.last_complete() == -1
        with pytest.raises(CheckpointError, match="unreadable"):
            ck.load(0)

    def test_ranks_are_isolated(self, tmp_path):
        a = RankCheckpoint(str(tmp_path), rank=0)
        b = RankCheckpoint(str(tmp_path), rank=1)
        a.save(0, 0, self._payload(1))
        assert b.last_complete() == -1


class TestRecoveryPolicy:
    def test_retryable_faults(self):
        policy = RecoveryPolicy()
        assert policy.is_retryable(RankFailure("x"))
        assert policy.is_retryable(InjectedFault("x"))
        assert policy.is_retryable(CorruptPayload("x"))
        assert policy.is_retryable(DiskFull("x"))
        assert policy.is_retryable(MPIError("x"))

    def test_not_retryable(self):
        policy = RecoveryPolicy()
        # A collective-protocol violation is a programming error: the
        # retry would deterministically hit it again.
        assert not policy.is_retryable(CollectiveMisuse("x"))
        assert not policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(KeyboardInterrupt())

    def test_backoff_is_exponential(self):
        policy = RecoveryPolicy(backoff_seconds=0.5)
        assert policy.backoff_for(1) == 0.5
        assert policy.backoff_for(2) == 1.0
        assert policy.backoff_for(3) == 2.0
        # growth 1.0 degenerates to a flat backoff
        flat = RecoveryPolicy(backoff_seconds=0.5, backoff_growth=1.0)
        assert flat.backoff_for(3) == 0.5


class TestRecoveryWithoutCheckpoint:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_then_bit_identical(self, relation, backend):
        base = build(relation, backend)
        res = build(
            relation,
            backend,
            faults=FaultPlan.parse("crash@r1s6"),
            recovery=RecoveryPolicy(max_retries=2),
        )
        assert res.metrics.attempts == 2
        assert fingerprint(res) == fingerprint(base)
        # Honest accounting: the wasted attempt inflates simulated time.
        assert res.metrics.recovered_seconds > 0
        assert (
            res.metrics.simulated_seconds
            > base.metrics.simulated_seconds
        )
        assert "recovered after 1 failed attempt" in res.metrics.summary()

    def test_no_recovery_policy_raises(self, relation):
        with pytest.raises(InjectedFault):
            build(relation, "thread", faults=FaultPlan.parse("crash@r1s6"))

    def test_max_retries_exhausted(self, relation):
        # The fault fires on attempts 0 AND 1; one retry is not enough.
        plan = FaultPlan.parse("crash@r1s6a0;crash@r1s6a1")
        with pytest.raises(InjectedFault):
            build(
                relation,
                "thread",
                faults=plan,
                recovery=RecoveryPolicy(max_retries=1),
            )

    def test_backoff_charged_to_simulated_time(self, relation):
        quick = build(
            relation,
            "thread",
            faults=FaultPlan.parse("crash@r1s6"),
            recovery=RecoveryPolicy(max_retries=2, backoff_seconds=0.0),
        )
        patient = build(
            relation,
            "thread",
            faults=FaultPlan.parse("crash@r1s6"),
            recovery=RecoveryPolicy(max_retries=2, backoff_seconds=2.0),
        )
        assert patient.metrics.simulated_seconds == pytest.approx(
            quick.metrics.simulated_seconds + 2.0
        )
        assert fingerprint(patient) == fingerprint(quick)


class TestRecoveryWithCheckpoint:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resume_is_bit_identical(self, relation, backend, tmp_path):
        base = build(relation, backend)
        res = build(
            relation,
            backend,
            faults=FaultPlan.parse("crash@r1s22"),
            checkpoint_dir=str(tmp_path),
            recovery=RecoveryPolicy(max_retries=2),
        )
        assert res.metrics.attempts == 2
        assert fingerprint(res) == fingerprint(base)
        # The crashed attempt completed at least one dimension iteration,
        # so the retry resumed from its checkpoint.
        ck = RankCheckpoint(str(tmp_path), rank=0)
        assert ck.last_complete() >= 0

    def test_checkpoint_io_is_metered(self, relation, tmp_path):
        plain = build(relation, "thread")
        ckpt = build(relation, "thread", checkpoint_dir=str(tmp_path))
        assert fingerprint(ckpt) == fingerprint(plain)
        # Writing checkpoints costs disk blocks and simulated time.
        assert ckpt.metrics.disk_blocks > plain.metrics.disk_blocks
        assert (
            ckpt.metrics.simulated_seconds > plain.metrics.simulated_seconds
        )

    def test_fresh_checkpointed_build_matches(self, relation, tmp_path):
        """A fault-free build with checkpointing produces the same cube
        (checkpoints only add I/O, never change results)."""
        a = build(relation, "thread")
        b = build(relation, "thread", checkpoint_dir=str(tmp_path))
        assert fingerprint(a) == fingerprint(b)


CHAOS_PLANS = {
    "crash": "crash@r1s9",
    "corrupt": "corrupt@r0s7",
    "delay": "delay@r1s5x0.4",
    "diskfull": "diskfull@r1b6",
}


class TestChaosMatrix:
    """Every fault kind on every backend, with and without checkpoints:
    the build either recovers bit-identically or fails cleanly with the
    originating error — never a hang, never a wrong answer."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fault", sorted(CHAOS_PLANS))
    def test_recovers_or_fails_cleanly(
        self, relation, fault, backend, tmp_path
    ):
        base = build(relation, backend)
        for ckpt in (None, str(tmp_path)):
            try:
                res = build(
                    relation,
                    backend,
                    faults=FaultPlan.parse(CHAOS_PLANS[fault]),
                    checkpoint_dir=ckpt,
                    recovery=RecoveryPolicy(max_retries=2),
                )
            except (InjectedFault, CorruptPayload, RankFailure) as exc:
                pytest.fail(f"retryable fault not recovered: {exc!r}")
            assert fingerprint(res) == fingerprint(base)
            expected_attempts = 1 if fault == "delay" else 2
            assert res.metrics.attempts == expected_attempts

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_chaos_plan_runs(self, relation, backend):
        """A seeded random plan either recovers or surfaces its own
        fault type — exercised end-to-end as the CI chaos job does."""
        plan = FaultPlan.random(seed=1234, p=2, n_faults=2)
        base = build(relation, backend)
        try:
            res = build(
                relation,
                backend,
                faults=plan,
                recovery=RecoveryPolicy(max_retries=3),
            )
        except (InjectedFault, CorruptPayload, RankFailure, MPIError):
            return  # clean failure is acceptable for stacked random faults
        assert fingerprint(res) == fingerprint(base)
