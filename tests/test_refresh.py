"""Tests for incremental cube maintenance (refresh_cube)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import reference_cube
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube, build_partial_cube
from repro.core.validate import validate_cube
from repro.olap.refresh import refresh_cube
from repro.storage.table import Relation
from tests.conftest import make_relation

CARDS = (10, 6, 4)


def split(rel, n_first):
    return rel.slice(0, n_first), rel.slice(n_first, rel.nrows)


class TestRefresh:
    def test_equals_full_rebuild(self):
        rel = make_relation(3000, CARDS, seed=40)
        first, extra = split(rel, 2000)
        spec = MachineSpec(p=3)
        cube = build_data_cube(first, CARDS, spec)
        refreshed = refresh_cube(cube, extra, spec)
        want = reference_cube(rel, CARDS)
        for view, rel_want in want.items():
            assert refreshed.view_relation(view).same_content(rel_want), view

    def test_refreshed_cube_is_valid(self):
        rel = make_relation(2500, CARDS, seed=41)
        first, extra = split(rel, 1500)
        cube = build_data_cube(first, CARDS, MachineSpec(p=4))
        refreshed = refresh_cube(cube, extra)
        report = validate_cube(refreshed)
        assert report.ok, report.describe()

    def test_original_cube_untouched(self):
        rel = make_relation(2000, CARDS, seed=42)
        first, extra = split(rel, 1000)
        cube = build_data_cube(first, CARDS, MachineSpec(p=2))
        before = cube.total_rows()
        refresh_cube(cube, extra)
        assert cube.total_rows() == before

    def test_chained_refreshes(self):
        rel = make_relation(3000, CARDS, seed=43)
        a, rest = split(rel, 1000)
        b, c = split(rest, 1000)
        cube = build_data_cube(a, CARDS, MachineSpec(p=3))
        cube = refresh_cube(cube, b)
        cube = refresh_cube(cube, c)
        want = reference_cube(rel, CARDS)
        for view, rel_want in want.items():
            assert cube.view_relation(view).same_content(rel_want), view

    def test_empty_delta(self):
        rel = make_relation(1200, CARDS, seed=44)
        cube = build_data_cube(rel, CARDS, MachineSpec(p=2))
        refreshed = refresh_cube(cube, Relation.empty(len(CARDS)))
        for view in cube.views:
            assert refreshed.view_relation(view).same_content(
                cube.view_relation(view)
            )

    @pytest.mark.parametrize("agg", ["count", "min", "max"])
    def test_other_aggregates(self, agg):
        rel = make_relation(2000, CARDS, seed=45)
        first, extra = split(rel, 1200)
        cube = build_data_cube(
            first, CARDS, MachineSpec(p=3), CubeConfig(agg=agg)
        )
        refreshed = refresh_cube(cube, extra, config=CubeConfig(agg=agg))
        want = reference_cube(rel, CARDS, agg=agg)
        for view, rel_want in want.items():
            assert refreshed.view_relation(view).same_content(rel_want), (
                agg, view,
            )

    def test_agg_mismatch_rejected(self):
        rel = make_relation(500, CARDS, seed=46)
        cube = build_data_cube(rel, CARDS, MachineSpec(p=2))
        with pytest.raises(ValueError, match="aggregates"):
            refresh_cube(cube, rel, config=CubeConfig(agg="min"))

    def test_partial_cube_rejected(self):
        rel = make_relation(500, CARDS, seed=47)
        cube = build_partial_cube(rel, CARDS, [(0,)], MachineSpec(p=2))
        with pytest.raises(ValueError, match="full cube"):
            refresh_cube(cube, rel)

    def test_cheaper_than_rebuild_for_small_delta(self):
        rel = make_relation(20_000, (16, 12, 8, 6), seed=48)
        first, extra = split(rel, 19_000)
        spec = MachineSpec(p=4)
        cube = build_data_cube(first, (16, 12, 8, 6), spec)
        refreshed = refresh_cube(cube, extra, spec)
        rebuild = build_data_cube(rel, (16, 12, 8, 6), spec)
        # the 5% delta must not cost a full rebuild's partition phase
        assert (
            refreshed.metrics.simulated_seconds
            < rebuild.metrics.simulated_seconds
        )

    @settings(max_examples=8)
    @given(st.integers(0, 300), st.integers(0, 300), st.integers(2, 4))
    def test_property_equivalence(self, n1, n2, p):
        cards = (7, 5, 3)
        rel = make_relation(n1 + n2, cards, seed=n1 * 7 + n2)
        first, extra = split(rel, n1)
        cube = build_data_cube(first, cards, MachineSpec(p=p))
        refreshed = refresh_cube(cube, extra)
        want = reference_cube(rel, cards)
        for view, rel_want in want.items():
            assert refreshed.view_relation(view).same_content(rel_want)


class TestRefreshContracts:
    def test_empty_delta_fast_path_skips_the_engine(self):
        # An empty delta must not run the force_nonprefix sweep (or any
        # superstep at all): zero communication, zero simulated time.
        rel = make_relation(1500, CARDS, seed=49)
        cube = build_data_cube(rel, CARDS, MachineSpec(p=3))
        refreshed = refresh_cube(cube, Relation.empty(len(CARDS)))
        assert refreshed.metrics.comm_bytes == 0
        assert refreshed.metrics.simulated_seconds == 0.0
        assert refreshed.metrics.output_rows == cube.total_rows()
        for view in cube.views:
            assert refreshed.view_relation(view).same_content(
                cube.view_relation(view)
            )

    def test_require_insert_maintainable(self):
        from repro.core.aggregate import (
            INSERT_MAINTAINABLE_AGGS,
            require_insert_maintainable,
        )

        for agg in INSERT_MAINTAINABLE_AGGS:
            assert require_insert_maintainable(agg) == agg
        with pytest.raises(ValueError, match="insert-maintainable"):
            require_insert_maintainable("avg")
        with pytest.raises(ValueError, match="median"):
            require_insert_maintainable("median")

    def test_refresh_cube_guards_the_aggregate(self):
        rel = make_relation(400, CARDS, seed=51)
        cube = build_data_cube(rel, CARDS, MachineSpec(p=2))
        object.__setattr__(cube, "agg", "avg")
        with pytest.raises(ValueError):
            refresh_cube(cube, rel.slice(0, 10))
