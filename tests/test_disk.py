"""Tests for repro.storage.disk: LocalDisk, DiskStats, WorkMeter."""

import math

import numpy as np
import pytest

from repro.storage.disk import DiskStats, LocalDisk, WorkMeter
from repro.storage.table import Relation


def make_rel(n: int, width: int = 2) -> Relation:
    rng = np.random.default_rng(7)
    return Relation(
        rng.integers(0, 10, (n, width)).astype(np.int64), rng.random(n)
    )


class TestSpillLoad:
    def test_roundtrip_memory(self):
        disk = LocalDisk(block_size=8)
        rel = make_rel(20)
        token = disk.spill(rel)
        back = disk.load(token)
        assert back.same_content(rel)

    def test_roundtrip_real_files(self, tmp_path):
        disk = LocalDisk(block_size=8, root=str(tmp_path))
        rel = make_rel(20)
        token = disk.spill(rel)
        assert (tmp_path / token).exists()
        assert disk.load(token).same_content(rel)
        disk.delete(token)
        assert not (tmp_path / token).exists()

    def test_load_slice(self):
        disk = LocalDisk(block_size=4)
        rel = make_rel(20)
        token = disk.spill(rel)
        part = disk.load_slice(token, 5, 9)
        assert part.nrows == 4
        assert np.array_equal(part.dims, rel.dims[5:9])

    def test_missing_file_raises(self):
        disk = LocalDisk(block_size=4)
        with pytest.raises(FileNotFoundError):
            disk.load("nope.npz")

    def test_missing_file_raises_on_real_disk(self, tmp_path):
        disk = LocalDisk(block_size=4, root=str(tmp_path))
        with pytest.raises(FileNotFoundError):
            disk.load("nope.npz")

    def test_delete_is_idempotent(self):
        disk = LocalDisk(block_size=4)
        token = disk.spill(make_rel(4))
        disk.delete(token)
        disk.delete(token)  # no raise

    def test_unique_tokens(self):
        disk = LocalDisk(block_size=4)
        tokens = {disk.spill(make_rel(2)) for _ in range(10)}
        assert len(tokens) == 10

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            LocalDisk(block_size=0)


class TestAccounting:
    def test_write_blocks_rounded_up(self):
        disk = LocalDisk(block_size=8)
        disk.spill(make_rel(17))  # 17 rows -> 3 blocks
        assert disk.stats.blocks_written == 3
        assert disk.stats.rows_written == 17

    def test_read_blocks(self):
        disk = LocalDisk(block_size=8)
        token = disk.spill(make_rel(16))
        disk.load(token)
        assert disk.stats.blocks_read == 2

    def test_zero_rows_zero_blocks(self):
        disk = LocalDisk(block_size=8)
        disk.spill(Relation.empty(2))
        assert disk.stats.blocks_written == 0

    def test_charge_hooks(self):
        disk = LocalDisk(block_size=10)
        disk.charge_scan(25)
        disk.charge_store(5)
        assert disk.stats.blocks_read == 3
        assert disk.stats.blocks_written == 1
        assert disk.stats.blocks_total == 4

    def test_snapshot(self):
        disk = LocalDisk(block_size=4)
        disk.spill(make_rel(4))
        snap = disk.stats.snapshot()
        assert snap["files_created"] == 1
        assert snap["blocks_written"] == 1

    def test_stats_standalone(self):
        stats = DiskStats()
        stats.charge_read(10, 4)
        stats.charge_write(4, 4)
        assert stats.blocks_total == 4


class TestWorkMeter:
    def test_sort_charge_n_log_n(self):
        meter = WorkMeter(sort_sec_per_row_level=1.0, scan_sec_per_row=1.0)
        meter.charge_sort(1024)
        assert meter.seconds == pytest.approx(1024 * 10)
        assert meter.rows_sorted == 1024

    def test_small_sort_min_one_level(self):
        meter = WorkMeter(sort_sec_per_row_level=1.0)
        meter.charge_sort(1)
        assert meter.seconds == pytest.approx(1.0)

    def test_scan_charge_linear(self):
        meter = WorkMeter(scan_sec_per_row=0.5)
        meter.charge_scan(100)
        assert meter.seconds == pytest.approx(50.0)
        assert meter.rows_scanned == 100

    def test_zero_and_negative_ignored(self):
        meter = WorkMeter()
        meter.charge_sort(0)
        meter.charge_scan(-5)
        assert meter.seconds == 0.0

    def test_accumulates(self):
        meter = WorkMeter(sort_sec_per_row_level=1.0, scan_sec_per_row=1.0)
        meter.charge_scan(10)
        meter.charge_scan(10)
        meter.charge_sort(2)
        assert meter.seconds == pytest.approx(20 + 2 * math.log2(2))

    def test_disk_carries_meter(self):
        disk = LocalDisk(block_size=4)
        disk.work.charge_scan(10)
        assert disk.work.seconds > 0
