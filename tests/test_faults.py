"""Fault-injection harness tests (PR: robustness tentpole).

Covers the :mod:`repro.mpi.faults` plan grammar, the
:class:`FaultyTransport` semantics of every fault kind on both execution
backends, the sealed-payload wire contract (CRC surfacing corruption,
metering unchanged), every-rank collective validation, and the orphaned
shared-memory segment sweeper — including a worker SIGKILL'd while its
peers sit inside a collective.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.config import MachineSpec
from repro.mpi import shm
from repro.mpi.engine import run_spmd
from repro.mpi.errors import (
    CollectiveMisuse,
    CorruptPayload,
    DiskFull,
    InjectedFault,
    MPIError,
)
from repro.mpi.faults import (
    CorruptFault,
    CrashFault,
    DelayFault,
    DiskFullFault,
    FaultPlan,
)

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)

BACKENDS = ["thread", pytest.param("process", marks=requires_fork)]


def det_spec(p, backend, **kw):
    return MachineSpec(p=p, backend=backend, compute_scale=0.0, **kw)


class TestFaultPlanGrammar:
    def test_parse_all_kinds(self):
        plan = FaultPlan.parse(
            "crash@r1s5; corrupt@r2s3, delay@r0s2x0.5; diskfull@r1b40"
        )
        assert plan.faults == (
            CrashFault(1, 5),
            CorruptFault(2, 3),
            DelayFault(0, 2, 0.5),
            DiskFullFault(1, 40),
        )

    def test_parse_attempt_suffix(self):
        plan = FaultPlan.parse("crash@r0s1a2")
        assert plan.faults == (CrashFault(0, 1, attempt=2),)
        assert plan.for_rank(0, 2) == [CrashFault(0, 1, 2)]
        assert plan.for_rank(0, 0) == []

    def test_describe_roundtrips(self):
        text = "crash@r1s5; delay@r0s2x0.5; diskfull@r3b7a1"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()) == plan

    @pytest.mark.parametrize(
        "bad",
        ["", "explode@r0s1", "crash@r0", "diskfull@r0s3", "crash@r0s1z9"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(seed=42, p=8)
        b = FaultPlan.random(seed=42, p=8)
        c = FaultPlan.random(seed=43, p=8)
        assert a == b
        assert a != c
        assert all(f.rank < 8 for f in a.faults)


class TestFaultyTransport:
    """Fault semantics must be identical across backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_raises_injected_fault(self, backend):
        def prog(c):
            c.barrier()
            c.allgather(c.rank)
            return c.rank

        with pytest.raises(InjectedFault, match="rank 1.*superstep 1"):
            run_spmd(
                prog,
                det_spec(3, backend),
                faults=FaultPlan.parse("crash@r1s1"),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupt_surfaces_crc_failure(self, backend):
        def prog(c):
            return c.allgather(np.arange(64, dtype=np.int64) + c.rank)

        with pytest.raises(CorruptPayload, match="from rank 1.*CRC"):
            run_spmd(
                prog,
                det_spec(3, backend),
                faults=FaultPlan.parse("corrupt@r1s0"),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delay_charges_exact_simulated_seconds(self, backend):
        def prog(c):
            c.barrier()
            c.barrier()

        base = run_spmd(prog, det_spec(2, backend))
        slow = run_spmd(
            prog,
            det_spec(2, backend),
            faults=FaultPlan.parse("delay@r1s1x0.75"),
        )
        assert slow.clock.sim_time == pytest.approx(
            base.clock.sim_time + 0.75
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_diskfull_trips_on_quota(self, backend):
        def prog(c):
            c.barrier()
            c.disk.charge_store(100_000)
            c.barrier()

        with pytest.raises(DiskFull, match="rank 1.*quota 3"):
            run_spmd(
                prog,
                det_spec(2, backend),
                faults=FaultPlan.parse("diskfull@r1b3"),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_attempt_gating(self, backend):
        """A fault bound to attempt 1 must not fire on attempt 0."""

        def prog(c):
            c.barrier()
            return c.rank

        plan = FaultPlan.parse("crash@r0s0a1")
        ok = run_spmd(prog, det_spec(2, backend), faults=plan, attempt=0)
        assert ok.rank_results == [0, 1]
        with pytest.raises(InjectedFault):
            run_spmd(prog, det_spec(2, backend), faults=plan, attempt=1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sealing_does_not_change_metering(self, backend):
        """CRC sealing is a wire-format detail: byte rows come from the
        unsealed payloads, so comm_bytes must match the plain run."""

        def prog(c):
            c.allgather(np.arange(500, dtype=np.int64))
            c.alltoall([np.arange(40, dtype=np.float64)] * c.size)
            c.allreduce(float(c.rank))

        plain = run_spmd(prog, det_spec(3, backend))
        sealed = run_spmd(prog, det_spec(3, backend), faults=FaultPlan())
        assert sealed.stats.total_bytes == plain.stats.total_bytes
        assert sealed.stats.bytes_by_kind == plain.stats.bytes_by_kind
        assert sealed.clock.sim_time == pytest.approx(plain.clock.sim_time)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sealed_collectives_return_same_values(self, backend):
        def prog(c):
            got = c.allgather(np.full(8, c.rank, dtype=np.int64))
            split = c.scatter(
                [f"to-{k}" for k in range(c.size)] if c.rank == 0 else None
            )
            return ([int(g[0]) for g in got], split)

        plain = run_spmd(prog, det_spec(3, backend))
        sealed = run_spmd(prog, det_spec(3, backend), faults=FaultPlan())
        assert plain.rank_results == sealed.rank_results


class TestCollectiveValidation:
    """Satellite: misuse diagnostics carry rank + phase, and length
    checks run on *every* rank, not just the root."""

    def test_scatter_wrong_length_nonroot(self):
        def prog(c):
            c.set_phase("shuffle")
            # Rank 1 passes a wrong-length list even though it is not
            # the root — must be rejected locally, before the exchange.
            values = [0] * (c.size + 1) if c.rank == 1 else None
            if c.rank == 0:
                values = [0] * c.size
            return c.scatter(values, root=0)

        with pytest.raises(
            CollectiveMisuse, match=r"rank 1 \[phase shuffle\].*scatter"
        ):
            run_spmd(prog, det_spec(3, "thread"))

    def test_scatter_root_none(self):
        def prog(c):
            return c.scatter(None, root=0)

        with pytest.raises(CollectiveMisuse, match=r"rank 0 \[phase"):
            run_spmd(prog, det_spec(2, "thread"))

    def test_alltoall_wrong_lane_count(self):
        def prog(c):
            c.set_phase("partition")
            lanes = [None] * (c.size - 1) if c.rank == 2 else [None] * c.size
            return c.alltoall(lanes)

        with pytest.raises(
            CollectiveMisuse, match=r"rank 2 \[phase partition\].*lanes"
        ):
            run_spmd(prog, det_spec(3, "thread"))

    def test_allreduce_bad_op(self):
        def prog(c):
            return c.allreduce(1.0, op="median")

        with pytest.raises(CollectiveMisuse, match=r"rank \d \[phase"):
            run_spmd(prog, det_spec(2, "thread"))


class TestOrphanSweep:
    """Satellite: stale segments from dead creators are reclaimed."""

    def test_dead_pid_segment_swept_live_kept(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=lambda: None)
        proc.start()
        proc.join()
        dead_pid = proc.pid
        dead_name = f"rp{dead_pid}x{'0a' * 4}"
        live_name = f"rp{os.getpid()}x{'0b' * 4}"
        for name in (dead_name, live_name):
            with open(os.path.join("/dev/shm", name), "wb") as fh:
                fh.write(b"\0" * 16)
        try:
            swept = shm.sweep_orphans()
            assert dead_name in swept
            assert not os.path.exists(os.path.join("/dev/shm", dead_name))
            assert os.path.exists(os.path.join("/dev/shm", live_name))
        finally:
            for name in (dead_name, live_name):
                try:
                    os.unlink(os.path.join("/dev/shm", name))
                except FileNotFoundError:
                    pass

    def test_targeted_sweep_ignores_other_dead_pids(self):
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=lambda: None) for _ in range(2)]
        for proc in procs:
            proc.start()
            proc.join()
        names = [f"rp{proc.pid}x{'0c' * 4}" for proc in procs]
        for name in names:
            with open(os.path.join("/dev/shm", name), "wb") as fh:
                fh.write(b"\0" * 16)
        try:
            swept = shm.sweep_orphans(pids=[procs[0].pid])
            assert names[0] in swept
            assert os.path.exists(os.path.join("/dev/shm", names[1]))
        finally:
            for name in names:
                try:
                    os.unlink(os.path.join("/dev/shm", name))
                except FileNotFoundError:
                    pass

    def test_segment_names_carry_creator_pid(self):
        seg = shm._create_segment(64)
        try:
            m = shm._SEGMENT_RE.match(seg.name)
            assert m is not None
            assert int(m.group(1)) == os.getpid()
        finally:
            seg.close()
            seg.unlink()


def _sigkill_prog(c, path):
    big = np.arange(shm.SHM_MIN_BYTES // 8 + 7, dtype=np.int64)
    c.allgather(big)
    if c.rank == 1:
        # Leave an in-flight segment behind, then die without cleanup —
        # exactly what a SIGKILL mid-collective does to a real worker.
        seg = shm._create_segment(4096)
        with open(path, "w") as fh:
            fh.write(f"{os.getpid()} {seg.name}")
        os.kill(os.getpid(), signal.SIGKILL)
    c.allgather(big)  # peers block here; rank 1 never arrives
    return c.rank


@requires_fork
class TestSigkillMidCollective:
    """Satellite: a SIGKILL'd worker must not wedge its peers or leak
    its shared-memory segments, and the failure must name the rank."""

    def test_peers_unblock_segments_swept(self, tmp_path):
        path = str(tmp_path / "victim")
        with pytest.raises(MPIError, match="rank 1 worker process died"):
            run_spmd(_sigkill_prog, det_spec(3, "process"), args=(path,))
        pid_text, seg = open(path).read().split()
        assert not os.path.exists(os.path.join("/dev/shm", seg))
        leftovers = [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(f"rp{pid_text}x")
        ]
        assert leftovers == []


def _sigkill_mid_lease_prog(c, path):
    big = np.arange(shm.SHM_MIN_BYTES // 8 + 7, dtype=np.int64)
    # Under the zero-copy plane these decoded slots are views pinning
    # leases on the peers' (pooled) segments.
    slots = c.allgather(big)
    if c.rank == 1:
        with open(path, "w") as fh:
            fh.write(str(os.getpid()))
        # Die while the leases are live: own arena segments still in
        # flight, foreign attachments still pinned, release round for
        # this superstep never sent.
        os.kill(os.getpid(), signal.SIGKILL)
    total = int(np.asarray(slots[0], dtype=np.int64).sum())
    c.allgather(np.array([total]))  # peers block here; rank 1 is gone
    return c.rank


@requires_fork
class TestSigkillMidLease:
    """Chaos cell for the zero-copy data plane: a worker SIGKILL'd while
    holding live leases must not wedge its peers, and no shared-memory
    segment — its own arena's or the pooled segments its death left
    unreleased — may outlive the run."""

    @pytest.mark.parametrize(
        "pooled,zero_copy",
        [
            pytest.param(True, True, id="pooled-zerocopy"),
            pytest.param(True, False, id="pooled-copy"),
            pytest.param(False, True, id="unpooled-zerocopy"),
        ],
    )
    def test_no_leaked_segments(self, tmp_path, pooled, zero_copy):
        before = {
            n for n in os.listdir("/dev/shm") if shm._SEGMENT_RE.match(n)
        }
        path = str(tmp_path / "victim")
        spec = det_spec(
            3, "process", shm_pool=pooled, shm_zero_copy=zero_copy
        )
        with pytest.raises(MPIError, match="rank 1 worker process died"):
            run_spmd(_sigkill_mid_lease_prog, spec, args=(path,))
        pid_text = open(path).read().strip()
        after = {
            n for n in os.listdir("/dev/shm") if shm._SEGMENT_RE.match(n)
        }
        assert after <= before, f"leaked segments: {sorted(after - before)}"
        assert not [n for n in after if n.startswith(f"rp{pid_text}x")]
