"""Tests for on-disk incremental refresh: delta-merge generations
(refresh_store), the atomic CURRENT swap, and refresh-aware serving."""

import json
import os
import time

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec
from repro.core.audit import audit_cube
from repro.core.cube import build_data_cube
from repro.olap.cache import CachedQueryEngine
from repro.olap.query import Query
from repro.olap.refresh import refresh_store
from repro.olap.service import QueryService
from repro.olap.store import CubeStore
from repro.olap.supervise import ServicePolicy
from repro.storage.table import Relation

CARDS = (12, 8, 5, 3)
SPEC = MachineSpec(p=3)

QUERIES = [
    Query(group_by=()),
    Query(group_by=(0,)),
    Query(group_by=(1, 3)),
    Query(group_by=(0, 1), filters={0: (2, 9)}),
    Query(group_by=(), filters={0: (4, 4), 1: (2, 2)}),
]


def int_relation(n, cards=CARDS, seed=0):
    """Integer-valued float64 measures: SUMs stay exact, so refresh
    vs. rebuild comparisons can demand bit-identity."""
    rng = np.random.default_rng(seed)
    dims = np.column_stack(
        [rng.integers(0, c, size=n, dtype=np.int64) for c in cards]
    )
    measure = rng.integers(1, 50, size=n).astype(np.float64)
    return Relation(dims, measure)


def split(rel, k):
    return rel.slice(0, k), rel.slice(k, rel.nrows)


def save_store(rel, path, cards=CARDS, spec=SPEC, **save_kwargs):
    cube = build_data_cube(rel, cards, spec)
    return CubeStore.save(cube, str(path), **save_kwargs)


def canon(rel):
    if rel.dims.shape[1] == 0:  # the ALL query: one ungrouped row
        return rel.dims, rel.measure
    order = np.lexsort(rel.dims.T[::-1])
    return rel.dims[order], rel.measure[order]


def assert_same_answers(path_a, path_b, queries=QUERIES):
    """Bit-identical across the scan, index, and dense access paths."""
    for index in (False, True):
        ea = CubeStore.open(path_a).query_engine(index=index)
        eb = CubeStore.open(path_b).query_engine(index=index)
        for query in queries:
            ra, rb = ea.answer(query), eb.answer(query)
            da, ma = canon(ra)
            db, mb = canon(rb)
            assert np.array_equal(da, db), (index, query)
            assert np.array_equal(ma, mb), (index, query)


class TestRefreshStoreFormats:
    @pytest.mark.parametrize("fmt", [1, 2, 3])
    def test_matches_full_rebuild(self, tmp_path, fmt):
        rel = int_relation(4000, seed=50 + fmt)
        first, extra = split(rel, 3200)
        store = save_store(first, tmp_path / "live", format=fmt)
        report = refresh_store(store, extra, spec=SPEC)
        assert report.generation == 1
        assert report.previous_generation == 0
        assert report.delta_rows == extra.nrows
        assert CubeStore.current_generation(store) == 1
        rebuilt = save_store(rel, tmp_path / "rebuilt", format=fmt)
        assert_same_answers(store, rebuilt)
        cube = CubeStore.load(store)
        assert audit_cube(cube, relation=rel).ok

    def test_reordered_hybrid_matches_rebuild(self, tmp_path):
        from repro.storage.reorder import reorder_relation

        rel = int_relation(4000, seed=54)
        first, extra = split(rel, 3200)
        data, reorder = reorder_relation(first, CARDS)
        store = CubeStore.save(
            build_data_cube(data, CARDS, SPEC),
            str(tmp_path / "live"),
            format=3,
            reorder=reorder,
        )
        # The delta arrives in ORIGINAL attribute values; refresh_store
        # must fold it through the manifest's recorded permutations.
        refresh_store(store, extra, spec=SPEC)
        # Rebuild under the SAME permutations as the live store (a
        # fresh reorder_relation over base+delta would sample different
        # frequencies), so apply the live store's reorder to the full
        # input.
        data_full = reorder.apply(rel)
        rebuilt = CubeStore.save(
            build_data_cube(data_full, CARDS, SPEC),
            str(tmp_path / "rebuilt"),
            format=3,
            reorder=reorder,
        )
        assert_same_answers(store, rebuilt)

    def test_promotion_to_dense(self, tmp_path):
        # A hot delta concentrated on few blocks must cross the density
        # threshold and re-promote those blocks.
        cards = (40, 30, 20)
        rng = np.random.default_rng(7)
        base = Relation(
            np.column_stack(
                [
                    rng.integers(0, c, size=3000, dtype=np.int64)
                    for c in cards
                ]
            ),
            rng.integers(1, 50, size=3000).astype(np.float64),
        )
        hot = Relation(
            np.column_stack(
                [
                    rng.integers(0, 4, size=4000, dtype=np.int64),
                    rng.integers(0, 30, size=4000, dtype=np.int64),
                    rng.integers(0, 20, size=4000, dtype=np.int64),
                ]
            ),
            rng.integers(1, 50, size=4000).astype(np.float64),
        )
        store = save_store(
            base, tmp_path / "live", cards=cards, format=3
        )
        report = refresh_store(store, hot, spec=SPEC)
        assert report.blocks_promoted > 0
        both = Relation(
            np.vstack([base.dims, hot.dims]),
            np.concatenate([base.measure, hot.measure]),
        )
        rebuilt = save_store(
            both, tmp_path / "rebuilt", cards=cards, format=3
        )
        assert_same_answers(
            store,
            rebuilt,
            queries=[Query(group_by=()), Query(group_by=(0,)),
                     Query(group_by=(0, 1), filters={0: (0, 3)})],
        )


class TestGenerationMechanics:
    def test_chained_refreshes_and_gc(self, tmp_path):
        rel = int_relation(3000, seed=60)
        a, rest = split(rel, 1800)
        b, c = split(rest, 600)
        store = save_store(a, tmp_path / "live", format=3)
        refresh_store(store, b, spec=SPEC)
        refresh_store(store, c, spec=SPEC)
        assert CubeStore.generations(store) == [0, 1, 2]
        assert CubeStore.current_generation(store) == 2
        # A pinned older generation stays readable by explicit request.
        mid = CubeStore.open(store, generation=1)
        assert mid.generation == 1
        rebuilt = save_store(rel, tmp_path / "rebuilt", format=3)
        assert_same_answers(store, rebuilt)
        removed = CubeStore.gc_generations(store)
        assert removed == [1]
        assert CubeStore.generations(store) == [0, 2]
        assert_same_answers(store, rebuilt)  # current survives GC
        with pytest.raises((FileNotFoundError, ValueError, OSError)):
            CubeStore.open(store, generation=1)

    def test_gc_keep_protects_generation(self, tmp_path):
        rel = int_relation(1500, seed=61)
        a, rest = split(rel, 900)
        b, c = split(rest, 300)
        store = save_store(a, tmp_path / "live")
        refresh_store(store, b, spec=SPEC)
        refresh_store(store, c, spec=SPEC)
        assert CubeStore.gc_generations(store, keep=[1]) == []
        assert CubeStore.generations(store) == [0, 1, 2]

    def test_empty_delta_is_a_noop(self, tmp_path):
        rel = int_relation(1200, seed=62)
        store = save_store(rel, tmp_path / "live", format=3)
        report = refresh_store(store, Relation.empty(len(CARDS)))
        assert report.generation == 0
        assert report.previous_generation == 0
        assert report.views_merged == 0
        assert CubeStore.current_generation(store) == 0
        assert CubeStore.generations(store) == [0]

    def test_untouched_files_hard_linked(self, tmp_path):
        rel = int_relation(4000, seed=63)
        first, extra = split(rel, 3600)
        store = save_store(first, tmp_path / "live", format=3)
        report = refresh_store(store, extra, spec=SPEC)
        assert report.files_linked > 0
        gen_dir, gen = CubeStore.resolve(store)
        assert gen == 1
        linked = [
            os.path.join(root, name)
            for root, _dirs, files in os.walk(gen_dir)
            for name in files
            if os.stat(os.path.join(root, name)).st_nlink >= 2
        ]
        assert len(linked) >= report.files_linked

    def test_current_swap_is_atomic_pointer(self, tmp_path):
        rel = int_relation(1000, seed=64)
        first, extra = split(rel, 700)
        store = save_store(first, tmp_path / "live")
        refresh_store(store, extra, spec=SPEC)
        current = os.path.join(store, "CURRENT")
        with open(current) as fh:
            assert fh.read().strip() == "gen-000001"
        # Rolling back is editing one pointer.
        CubeStore.set_current(store, 1)
        assert CubeStore.current_generation(store) == 1

    def test_set_current_rejects_flat_root(self, tmp_path):
        rel = int_relation(500, seed=65)
        store = save_store(rel, tmp_path / "live")
        with pytest.raises(ValueError):
            CubeStore.set_current(store, 0)


class TestRefreshContracts:
    def test_non_maintainable_agg_rejected(self, tmp_path):
        rel = int_relation(800, seed=70)
        store = save_store(rel, tmp_path / "live")
        manifest = os.path.join(store, "manifest.json")
        with open(manifest) as fh:
            doc = json.load(fh)
        doc["agg"] = "avg"
        with open(manifest, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ValueError, match="insert-maintainable"):
            refresh_store(store, int_relation(10, seed=71))

    def test_width_mismatch_rejected(self, tmp_path):
        rel = int_relation(800, seed=72)
        store = save_store(rel, tmp_path / "live")
        bad = int_relation(10, cards=(4, 4), seed=73)
        with pytest.raises(ValueError):
            refresh_store(store, bad)

    @pytest.mark.parametrize("agg", ["count", "min", "max"])
    def test_other_maintainable_aggregates(self, tmp_path, agg):
        rel = int_relation(2000, seed=74)
        first, extra = split(rel, 1500)
        cube = build_data_cube(
            first, CARDS, SPEC, CubeConfig(agg=agg)
        )
        store = CubeStore.save(cube, str(tmp_path / "live"), format=3)
        # COUNT persists as SUM-of-ones, so the delta's intent must be
        # stated explicitly or its measures would be *summed*.
        refresh_store(store, extra, spec=SPEC, config=CubeConfig(agg=agg))
        rebuilt = CubeStore.save(
            build_data_cube(rel, CARDS, SPEC, CubeConfig(agg=agg)),
            str(tmp_path / "rebuilt"),
            format=3,
        )
        assert_same_answers(store, rebuilt)


class TestRefreshAwareServing:
    def test_live_generation_pickup_no_stale_answers(self, tmp_path):
        rel = int_relation(3000, seed=80)
        first, extra = split(rel, 2400)
        store = save_store(first, tmp_path / "live")
        probe = Query(group_by=(0,))
        policy = ServicePolicy(
            heartbeat_interval=0.05,
            current_poll_interval=0.05,
        )
        with QueryService(
            store, workers=2, policy=policy, byte_budget=8 << 20
        ) as service:
            before = service.answer(probe)
            service.answer(probe)  # seeds the cache under generation 0
            report = refresh_store(store, extra, spec=SPEC)
            assert report.generation == 1
            assert service.check_generation() == 1
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                gens = [
                    g
                    for g in service.stats()[
                        "worker_store_generations"
                    ]
                    if g >= 0
                ]
                if gens and min(gens) >= 1:
                    break
                service.poll()
                time.sleep(0.01)
            else:
                pytest.fail("workers never rotated to generation 1")
            after = service.answer(probe)
            want = CubeStore.open(store).query_engine().answer(probe)
            da, ma = canon(after)
            dw, mw = canon(want)
            assert np.array_equal(da, dw)
            assert np.array_equal(ma, mw)
            db, mb = canon(before)
            assert not np.array_equal(ma, mb), (
                "delta did not change the probe answer; stale test is "
                "vacuous"
            )
            stats = service.stats()
            assert stats["store_generation"] == 1
            assert stats["generation_bumps"] >= 1

    def test_gc_after_all_workers_rotate(self, tmp_path):
        rel = int_relation(2400, seed=81)
        a, rest = split(rel, 1600)
        b, c = split(rest, 400)
        store = save_store(a, tmp_path / "live")
        policy = ServicePolicy(
            heartbeat_interval=0.05,
            current_poll_interval=0.05,
            gc_generations=True,
        )
        with QueryService(
            store, workers=2, policy=policy
        ) as service:
            refresh_store(store, b, spec=SPEC)
            service.check_generation()
            refresh_store(store, c, spec=SPEC)
            service.check_generation()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                service.poll()
                service.check_generation()
                if service.stats()["generations_removed"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("superseded generation never collected")
            assert 1 not in CubeStore.generations(store)
            # The service still answers from the surviving current.
            result = service.answer(Query(group_by=(1,)))
            assert result.nrows > 0

    def test_run_with_refresh_availability(self, tmp_path):
        from repro.olap.servebench import run_with_refresh

        rel = int_relation(2000, seed=82)
        first, extra = split(rel, 1600)
        store = save_store(first, tmp_path / "live")
        batches = [extra.slice(0, 200), extra.slice(200, 400)]
        policy = ServicePolicy(
            heartbeat_interval=0.05,
            current_poll_interval=0.05,
        )
        with QueryService(
            store, workers=2, policy=policy, byte_budget=8 << 20
        ) as service:
            rung = run_with_refresh(
                service,
                [Query(group_by=(d,)) for d in range(len(CARDS))],
                batches,
                offered_qps=60.0,
                n_queries=60,
                refresh_every=15,
                probe=Query(group_by=(0,)),
                spec=SPEC,
            )
        assert rung["refreshes"] == 2
        assert rung["refresh_failures"] == []
        assert rung["generation_end"] == 2
        assert rung["availability"] >= 0.99
        assert rung["probe_fresh"] is True


class TestCacheGenerationKeying:
    def test_attach_bumps_generation_and_invalidates(self):
        rel = int_relation(1500, seed=90)
        first, extra = split(rel, 1000)
        cube = build_data_cube(first, CARDS, SPEC)
        engine = CachedQueryEngine(cube, capacity=16)
        assert engine.generation == 0
        probe = Query(group_by=(0,))
        engine.answer(probe)
        engine.answer(probe)
        assert engine.stats.hits == 1
        full = build_data_cube(rel, CARDS, SPEC)
        engine.attach(full, generation=5)
        assert engine.generation == 5
        result = engine.answer(probe)
        assert engine.stats.misses == 2  # old entry unreachable
        want = build_data_cube(rel, CARDS, SPEC)
        from repro.olap.query import QueryEngine

        expect = QueryEngine(want).answer(probe)
        da, ma = canon(result)
        dw, mw = canon(expect)
        assert np.array_equal(da, dw)
        assert np.array_equal(ma, mw)

    def test_attach_without_generation_still_invalidates(self):
        rel = int_relation(900, seed=91)
        cube = build_data_cube(rel, CARDS, SPEC)
        engine = CachedQueryEngine(cube)
        probe = Query(group_by=(1,))
        engine.answer(probe)
        engine.attach(cube)
        assert engine.generation == 1
        engine.answer(probe)
        assert engine.stats.hits == 0
