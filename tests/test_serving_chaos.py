"""Chaos tests for the supervised serving runtime.

Every test injects a deterministic :class:`~repro.mpi.faults.\
ServeFaultPlan` (faults keyed on a worker generation's executed-query
counter, so they fire identically on a loaded 1-CPU host) and checks
the service's failure contract: retried answers stay bit-identical to
the inline engine, dead and hung workers are detected and replaced,
poison queries trip the circuit breaker instead of killing the pool,
overload is shed explicitly, and nothing leaks in ``/dev/shm``.
"""

import importlib.util
import os
import pathlib
import time

import numpy as np
import pytest

from repro.mpi.faults import (
    ServeCorruptFault,
    ServeFaultPlan,
    ServeHangFault,
    ServeKillFault,
)
from repro.olap import (
    CubeStore,
    PoisonQuery,
    Query,
    QueryEngine,
    QueryService,
    QueryTimeout,
    ServiceOverloaded,
    ServicePolicy,
)
from repro.olap.servebench import synthetic_serving_cube

CARDS = (16, 8, 8, 4)

#: Distinct point/rollup queries — distinct so in-flight dedup never
#: collapses them and per-worker executed-query counters stay exact.
WORKLOAD = [
    Query(group_by=(0,)),
    Query(group_by=(1,)),
    Query(group_by=(2,)),
    Query(group_by=(3,)),
    Query(group_by=(0, 1)),
    Query(group_by=(1, 2)),
    Query(group_by=(2, 3)),
    Query(group_by=(1,), filters={0: (2, 5)}),
]


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    cube = synthetic_serving_cube(4000, CARDS, p=2, seed=7)
    path = str(tmp_path_factory.mktemp("chaos") / "cube.d")
    CubeStore.save(cube, path)
    return path


@pytest.fixture(scope="module")
def inline(store_path):
    handle = CubeStore.open(store_path)
    engine = QueryEngine(
        handle.cube, sorted_views=handle.sorted_views, index=True
    )
    return {q: engine.answer(q) for q in WORKLOAD}


def assert_identical(got, want, query):
    assert np.array_equal(want.dims, got.dims), query.describe()
    assert np.array_equal(want.measure, got.measure), query.describe()


def leaked_segments(pids):
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return [
        name
        for name in os.listdir(shm_dir)
        for pid in pids
        if name.startswith(f"rp{pid}x")
    ]


# ---------------------------------------------------------------------------
# fault grammar
# ---------------------------------------------------------------------------


class TestServeFaultGrammar:
    def test_parse_and_schedule(self):
        plan = ServeFaultPlan.parse(
            "kill@w0q2g0; hang@w1q3x2.5, corrupt@w0q1"
        )
        assert plan.faults == (
            ServeKillFault(0, 2, 0),
            ServeHangFault(1, 3, 2.5, None),
            # corrupt without g fires every generation
            ServeCorruptFault(0, 1, None),
        )
        gen0 = plan.schedule(0, 0)
        assert gen0.kill_at == frozenset({2})
        assert gen0.corrupt_at == frozenset({1})
        # the g0 kill does not follow slot 0 into generation 1, the
        # generation-less corrupt does
        gen1 = plan.schedule(0, 1)
        assert gen1.kill_at == frozenset()
        assert gen1.corrupt_at == frozenset({1})
        w1 = plan.schedule(1, 4)
        assert w1.hang_seconds(3) == 2.5
        assert w1.hang_seconds(2) is None

    def test_describe_roundtrips(self):
        text = "kill@w0q2g0;hang@w1q3x2.5;corrupt@w2q4"
        plan = ServeFaultPlan.parse(text)
        assert ServeFaultPlan.parse(plan.describe()) == plan

    @pytest.mark.parametrize(
        "spec",
        ["", "kill@w0", "hang@r0s1", "explode@w0q1", "kill@w0q1z2"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            ServeFaultPlan.parse(spec)


# ---------------------------------------------------------------------------
# the chaos contract
# ---------------------------------------------------------------------------


class TestKillRecovery:
    def test_sigkill_mid_query_is_retried_bit_identical(
        self, store_path, inline
    ):
        # worker 0's first generation SIGKILLs itself on its 2nd query;
        # every query must still come back, byte-for-byte
        service = QueryService(
            store_path,
            workers=2,
            byte_budget=None,
            serve_faults=ServeFaultPlan.parse("kill@w0q1g0"),
        )
        try:
            results = service.answer_many(WORKLOAD, timeout=60)
            stats = service.stats()
        finally:
            service.close()
        for query, got in zip(WORKLOAD, results):
            assert_identical(got, inline[query], query)
        assert stats["worker_deaths"] == 1
        assert stats["restarts"] == 1
        assert stats["retries"] >= 1
        assert stats["live_workers"] == 2  # replacement filled the slot

    def test_no_leaked_segments_after_kill(self, store_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        service = QueryService(
            store_path,
            workers=2,
            byte_budget=None,
            serve_faults=ServeFaultPlan.parse("kill@w0q1g0"),
        )
        service.answer_many(WORKLOAD, timeout=60)
        pids = list(service._sup.all_pids)
        service.close()
        assert len(pids) == 3  # 2 initial + 1 replacement
        assert leaked_segments(pids) == []


class TestHangRecovery:
    def test_hung_worker_detected_and_replaced(self, store_path, inline):
        # generation 0 goes silent for 30s inside its 2nd query; the
        # supervisor must declare it hung, SIGKILL it, and respawn —
        # long before the sleep would have ended
        service = QueryService(
            store_path,
            workers=1,
            byte_budget=None,
            policy=ServicePolicy(
                heartbeat_interval=0.05, suspect_after=0.5
            ),
            serve_faults=ServeFaultPlan.parse("hang@w0q1x30g0"),
        )
        try:
            t0 = time.monotonic()
            results = service.answer_many(WORKLOAD[:4], timeout=60)
            elapsed = time.monotonic() - t0
            stats = service.stats()
        finally:
            service.close()
        for query, got in zip(WORKLOAD[:4], results):
            assert_identical(got, inline[query], query)
        assert stats["worker_hangs"] == 1
        assert stats["worker_deaths"] == 0
        assert stats["restarts"] == 1
        assert elapsed < 25.0  # did not sit out the 30s sleep

    def test_deadline_fires_while_worker_hangs(self, store_path, inline):
        # coordinator-side hard deadline: the waiter gets QueryTimeout
        # long before hang detection (suspect_after) kicks in, and the
        # pool still recovers afterwards
        service = QueryService(
            store_path,
            workers=1,
            byte_budget=None,
            policy=ServicePolicy(
                heartbeat_interval=0.05,
                suspect_after=1.0,
                deadline_s=0.3,
            ),
            serve_faults=ServeFaultPlan.parse("hang@w0q0x30g0"),
        )
        try:
            ticket = service.submit(WORKLOAD[0])
            with pytest.raises(QueryTimeout):
                service.wait(ticket, timeout=30)
            # a fresh query (generous explicit deadline: it must ride
            # out hang detection + respawn) proves the pool healed
            ticket2 = service.submit(WORKLOAD[1], deadline_s=30.0)
            got = service.wait(ticket2, timeout=60)
            stats = service.stats()
        finally:
            service.close()
        assert_identical(got, inline[WORKLOAD[1]], WORKLOAD[1])
        assert stats["timeouts"] >= 1
        assert stats["worker_hangs"] == 1
        assert stats["restarts"] == 1


class TestPoisonCircuitBreaker:
    def test_repeat_killer_is_quarantined(self, store_path, inline):
        # the same query kills two consecutive generations -> breaker
        # trips at threshold 2: waiters fail with PoisonQuery, later
        # submissions fail fast, and the pool survives to serve others
        service = QueryService(
            store_path,
            workers=1,
            byte_budget=None,
            policy=ServicePolicy(
                poison_threshold=2, max_retries=5, max_restarts=8
            ),
            serve_faults=ServeFaultPlan.parse(
                "kill@w0q0g0;kill@w0q0g1"
            ),
        )
        try:
            with pytest.raises(PoisonQuery):
                service.answer(WORKLOAD[0], timeout=60)
            # fast-fail: no worker executes the quarantined query again
            t0 = time.monotonic()
            with pytest.raises(PoisonQuery):
                service.answer(WORKLOAD[0], timeout=60)
            fast = time.monotonic() - t0
            got = service.answer(WORKLOAD[1], timeout=60)
            stats = service.stats()
        finally:
            service.close()
        assert_identical(got, inline[WORKLOAD[1]], WORKLOAD[1])
        assert fast < 1.0
        assert stats["poisoned"] == 1
        assert stats["worker_deaths"] == 2
        assert stats["live_workers"] == 1


class TestCorruptionRecovery:
    def test_corrupt_result_is_retried_transparently(
        self, store_path, inline
    ):
        # generation 0 flips a byte in its 2nd result blob; the CRC
        # check catches it and the retry returns pristine bytes
        service = QueryService(
            store_path,
            workers=1,
            byte_budget=None,
            serve_faults=ServeFaultPlan.parse("corrupt@w0q1g0"),
        )
        try:
            results = service.answer_many(WORKLOAD[:4], timeout=60)
            stats = service.stats()
        finally:
            service.close()
        for query, got in zip(WORKLOAD[:4], results):
            assert_identical(got, inline[query], query)
        assert stats["corrupt_results"] == 1
        assert stats["retries"] >= 1
        assert stats["worker_deaths"] == 0  # corruption is not a death


class TestLoadShedding:
    def test_submit_past_queue_depth_is_shed(self, store_path):
        # submit() never drains results, so back-to-back submissions
        # deterministically fill the in-flight window
        service = QueryService(
            store_path,
            workers=1,
            byte_budget=None,
            policy=ServicePolicy(max_queue_depth=4),
        )
        try:
            tickets = [service.submit(q) for q in WORKLOAD[:4]]
            with pytest.raises(ServiceOverloaded):
                service.submit(WORKLOAD[4])
            stats_mid = service.stats()
            for ticket in tickets:  # accepted work still completes
                service.wait(ticket, timeout=60)
            # with the window drained, submission opens up again
            service.answer(WORKLOAD[4], timeout=60)
            stats = service.stats()
        finally:
            service.close()
        assert stats_mid["shed"] == 1 and stats_mid["in_flight"] == 4
        assert stats["shed"] == 1
        assert stats["executed"] == 5


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------


class TestConstructionFailure:
    def test_invalid_workers_raises_cleanly(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            QueryService(str(tmp_path / "nope"), workers=0)

    def test_del_before_init_completes_is_silent(self):
        # __del__ on an instance whose __init__ never ran (the state
        # after a constructor exception) must not raise AttributeError
        ghost = object.__new__(QueryService)
        ghost.__del__()

    def test_bad_store_path_raises_not_attributeerror(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError, ValueError)):
            QueryService(str(tmp_path / "missing"), workers=1)


class TestWaitTimeoutIsTotal:
    def test_timeout_bounds_wall_time_despite_trickle(
        self, store_path
    ):
        # worker 0 hangs 2s on its first query (never detected:
        # suspect_after is huge); worker 1 keeps completing other
        # tickets the whole time.  wait(hung, timeout=0.5) must raise
        # at ~0.5s of *total* wall time, not have its deadline pushed
        # back by every arriving result.
        service = QueryService(
            store_path,
            workers=2,
            byte_budget=None,
            policy=ServicePolicy(
                heartbeat_interval=0.05, suspect_after=30.0
            ),
            serve_faults=ServeFaultPlan.parse("hang@w0q0x2.0g0"),
        )
        try:
            hung = service.submit(WORKLOAD[0])  # lands on idle slot 0
            others = [service.submit(q) for q in WORKLOAD[1:]]
            t0 = time.monotonic()
            with pytest.raises(TimeoutError):
                service.wait(hung, timeout=0.5)
            elapsed = time.monotonic() - t0
            for ticket in others:
                service.wait(ticket, timeout=60)
        finally:
            service.close()
        assert 0.4 <= elapsed < 1.5, elapsed

    def test_unknown_ticket_is_keyerror(self, store_path):
        with QueryService(store_path, workers=1) as service:
            with pytest.raises(KeyError):
                service.wait(10_000, timeout=1.0)


# ---------------------------------------------------------------------------
# the availability bench (quick mode), asserted end to end
# ---------------------------------------------------------------------------


class TestChaosBench:
    def test_quick_bench_meets_availability_target(
        self, tmp_path, monkeypatch
    ):
        bench_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_serving_chaos.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_serving_chaos", bench_path
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        monkeypatch.setenv("REPRO_BENCH_CHAOS_N", "20000")
        monkeypatch.setattr(
            mod, "JSON_PATH", tmp_path / "BENCH_serving_chaos.json"
        )
        report = mod.main()  # asserts availability/identity/leaks
        assert report["availability"] >= mod.AVAILABILITY_TARGET
        assert report["chaos"]["stats"]["worker_deaths"] >= 3
        assert report["worker_restarts"] >= 1
        assert report["p99_ms"] is not None and report["p99_ms"] > 0
        assert (tmp_path / "BENCH_serving_chaos.json").exists()
