"""Tests for the block-streaming run merge (repro.storage.runs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import LocalDisk
from repro.storage.external_sort import external_sort
from repro.storage.runs import RunReader, streaming_merge
from repro.storage.table import Relation


def spill_run(disk, keys):
    keys = np.sort(np.asarray(keys, dtype=np.int64))
    rel = Relation(keys[:, None], keys.astype(np.float64))
    return disk.spill(rel, hint="run"), keys.shape[0], keys


class TestRunReader:
    def test_block_at_a_time(self):
        disk = LocalDisk(block_size=4)
        token, n, keys = spill_run(disk, np.arange(10))
        disk.stats.blocks_read = 0
        reader = RunReader(disk, token, n)
        assert disk.stats.blocks_read == 1  # exactly one block buffered
        assert reader.buffer_max == 3

    def test_take_upto(self):
        disk = LocalDisk(block_size=8)
        token, n, _ = spill_run(disk, np.arange(8))
        reader = RunReader(disk, token, n)
        got, _ = reader.take_upto(4)
        assert got.tolist() == [0, 1, 2, 3, 4]
        got, _ = reader.take_upto(100)
        assert got.tolist() == [5, 6, 7]
        assert reader.exhausted

    def test_refill_progression(self):
        disk = LocalDisk(block_size=3)
        token, n, _ = spill_run(disk, np.arange(7))
        reader = RunReader(disk, token, n)
        seen = []
        while not reader.exhausted:
            keys, _ = reader.take_upto(10**9)
            seen.extend(keys.tolist())
            reader.refill()
        assert seen == list(range(7))


class TestStreamingMerge:
    def test_two_runs(self):
        disk = LocalDisk(block_size=4)
        t1, n1, _ = spill_run(disk, [1, 3, 5, 7, 9])
        t2, n2, _ = spill_run(disk, [0, 2, 4, 6, 8])
        keys, values = streaming_merge(disk, [t1, t2], [n1, n2])
        assert keys.tolist() == list(range(10))
        assert values.tolist() == [float(i) for i in range(10)]

    def test_empty_runs_skipped(self):
        disk = LocalDisk(block_size=4)
        t1, n1, _ = spill_run(disk, [5, 6])
        t2, n2, _ = spill_run(disk, [])
        keys, _ = streaming_merge(disk, [t1, t2], [n1, n2])
        assert keys.tolist() == [5, 6]

    def test_all_empty(self):
        disk = LocalDisk(block_size=4)
        keys, values = streaming_merge(disk, [], [])
        assert keys.size == 0 and values.size == 0

    def test_duplicate_keys_preserved(self):
        disk = LocalDisk(block_size=2)
        t1, n1, _ = spill_run(disk, [1, 1, 2])
        t2, n2, _ = spill_run(disk, [1, 2, 2])
        keys, _ = streaming_merge(disk, [t1, t2], [n1, n2])
        assert keys.tolist() == [1, 1, 1, 2, 2, 2]

    def test_skewed_run_lengths(self):
        disk = LocalDisk(block_size=8)
        t1, n1, _ = spill_run(disk, np.arange(1000))
        t2, n2, _ = spill_run(disk, [500])
        keys, _ = streaming_merge(disk, [t1, t2], [n1, n2])
        assert keys.shape[0] == 1001
        assert np.all(np.diff(keys) >= 0)

    @settings(max_examples=20)
    @given(
        st.lists(
            st.lists(st.integers(0, 1000), max_size=60),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 16),
    )
    def test_equals_global_sort(self, runs, block):
        disk = LocalDisk(block_size=block)
        tokens, counts, everything = [], [], []
        for raw in runs:
            token, n, keys = spill_run(disk, raw)
            tokens.append(token)
            counts.append(n)
            everything.extend(keys.tolist())
        keys, _ = streaming_merge(disk, tokens, counts)
        assert keys.tolist() == sorted(everything)


class TestStreamingExternalSort:
    @pytest.mark.parametrize("n,budget,block", [(1024, 64, 8), (777, 33, 5)])
    def test_identical_to_whole_run_merge(self, n, budget, block):
        rng = np.random.default_rng(n)
        keys = rng.integers(0, 10**9, n).astype(np.int64)
        values = rng.random(n)
        d1, d2 = LocalDisk(block_size=block), LocalDisk(block_size=block)
        a = external_sort(keys, values, d1, budget)
        b = external_sort(keys, values, d2, budget, streaming=True)
        assert np.array_equal(a[0], b[0])
        assert np.allclose(a[1], b[1])
        assert d1.stats.blocks_total == d2.stats.blocks_total
