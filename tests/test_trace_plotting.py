"""Tests for diagnostics: superstep traces, timelines, ASCII charts."""

import json

import numpy as np

from repro.bench.harness import Series, SeriesPoint
from repro.bench.plotting import ascii_chart
from repro.config import MachineSpec
from repro.mpi.engine import run_spmd
from repro.mpi.trace import phase_summary, render_timeline, trace_to_json


def run_traced():
    def prog(comm):
        comm.set_phase("alpha")
        comm.disk.work.charge_scan(500_000)
        comm.allgather(np.zeros(1000, dtype=np.int64))
        comm.set_phase("beta")
        comm.barrier()

    return run_spmd(prog, MachineSpec(p=3))


class TestTrace:
    def test_json_roundtrip(self):
        res = run_traced()
        payload = json.loads(trace_to_json(res.clock))
        assert payload["simulated_seconds"] > 0
        assert len(payload["supersteps"]) == 2
        kinds = [s["kind"] for s in payload["supersteps"]]
        assert kinds == ["allgather", "barrier"]

    def test_json_totals_consistent(self):
        res = run_traced()
        payload = json.loads(trace_to_json(res.clock))
        assert payload["compute_seconds"] + payload["comm_seconds"] <= (
            payload["simulated_seconds"] + 1e-9
        )

    def test_phase_summary(self):
        res = run_traced()
        rows = phase_summary(res.clock)
        phases = {r[0] for r in rows}
        assert "alpha" in phases
        total_steps = sum(r[3] for r in rows)
        assert total_steps == 2

    def test_timeline_renders(self):
        res = run_traced()
        text = render_timeline(res.clock)
        assert "supersteps" in text
        assert "alpha" in text
        assert "|" in text

    def test_timeline_empty_clock(self):
        res = run_spmd(lambda c: None, MachineSpec(p=2))
        text = render_timeline(res.clock)
        assert "0 supersteps" in text


def demo_series():
    s1 = Series(label="fast", x_name="p")
    s2 = Series(label="slow", x_name="p")
    for p in (1, 2, 4, 8):
        s1.points.append(SeriesPoint(x=p, seconds=10 / p, speedup=float(p), comm_mb=p * 2.0))
        s2.points.append(SeriesPoint(x=p, seconds=20 / p, speedup=p / 2.0, comm_mb=p * 1.0))
    return [s1, s2]


class TestAsciiChart:
    def test_renders_marks_and_legend(self):
        text = ascii_chart("chart", demo_series())
        assert "o fast" in text and "x slow" in text
        assert "o" in text.splitlines()[2] or any(
            "o" in line for line in text.splitlines()
        )

    def test_metric_selection(self):
        for metric in ("speedup", "seconds", "comm"):
            text = ascii_chart("chart", demo_series(), y=metric)
            assert f"[{metric}]" in text

    def test_empty(self):
        assert "(no data)" in ascii_chart("chart", [])

    def test_single_point(self):
        s = Series(label="dot", x_name="p",
                   points=[SeriesPoint(x=1, seconds=1.0, speedup=1.0)])
        text = ascii_chart("chart", [s])
        assert "o dot" in text
