"""Heterogeneity-aware partitioning and speculative straggler races.

Covers the rank speed model (clamped shares, apportionment, blending,
serialisation), speed-weighted pivots and share bounds, the ``slow@`` /
``hang@`` fault grammar and deterministic metering under both backends,
the supervisor's ``suspect_after`` deadline boundary, seeded backoff
jitter, and the speculative re-execution race end to end (recovered
straggler discarding the duplicate vs the width-(p-1) clone winning).
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec, RecoveryPolicy
from repro.core.checkpoint import ReshardPlan, share_bounds
from repro.core.cube import build_data_cube
from repro.core.sample_sort import _select_pivots, relative_imbalance
from repro.mpi.errors import RankHung
from repro.mpi.faults import FaultPlan, HangFault, SlowFault
from repro.mpi.speed import HeteroState, RankSpeedModel, clamped_shares
from repro.mpi.stats import throughput_rates
from repro.storage.table import Relation

from .conftest import make_relation
from .test_degraded import content_fingerprint, det_spec, requires_fork

CARDS = (8, 6, 5)


@pytest.fixture(scope="module")
def relation():
    raw = make_relation(1500, CARDS, seed=17)
    # Integer-valued measures so regrouped rows aggregate bit-exactly
    # regardless of partition layout (float summation order differs).
    return Relation(raw.dims, np.floor(raw.measure))


def build(relation, backend, p=3, *, hetero=False, **kw):
    return build_data_cube(
        relation, CARDS, det_spec(backend, p), CubeConfig(hetero=hetero),
        **kw,
    )


# ---------------------------------------------------------------------------
# speed model
# ---------------------------------------------------------------------------


class TestClampedShares:
    def test_uniform_speeds_give_uniform_shares(self):
        shares = clamped_shares(np.ones(4))
        assert np.allclose(shares, 0.25)

    def test_shares_sum_to_one_and_respect_bounds(self):
        for speeds in ([0.2, 1.0, 1.0, 1.8], [0.01, 1, 1, 1], [5, 1, 1, 1]):
            shares = clamped_shares(np.asarray(speeds, dtype=float))
            assert shares.sum() == pytest.approx(1.0)
            p = len(speeds)
            assert (shares >= 0.5 / p - 1e-9).all()
            assert (shares <= 2.0 / p + 1e-9).all()

    def test_faster_rank_gets_larger_share(self):
        shares = clamped_shares(np.asarray([0.5, 1.0, 1.5, 1.0]))
        assert shares[0] < shares[1] < shares[2]

    def test_single_rank(self):
        assert clamped_shares(np.asarray([3.0])) == pytest.approx([1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            clamped_shares(np.ones(2), floor=0.0)
        with pytest.raises(ValueError):
            clamped_shares(np.ones(2), ceil=0.9)


class TestRankSpeedModel:
    def test_from_rates_normalises_to_mean_one(self):
        m = RankSpeedModel.from_rates([10.0, 20.0, 30.0])
        assert np.mean(m.speeds) == pytest.approx(1.0)
        assert m.speeds[0] < m.speeds[1] < m.speeds[2]

    def test_counts_apportion_exactly(self):
        m = RankSpeedModel.from_rates([0.5, 1.0, 1.0, 1.5])
        for total in (0, 1, 97, 4000):
            counts = m.counts(total)
            assert counts.sum() == total
        counts = m.counts(7000)
        # Slow rank gets the clamped smaller piece, fast the larger.
        assert counts[0] < counts[1] <= counts[3]

    def test_counts_deterministic(self):
        m = RankSpeedModel.from_rates([1.0, 1.0, 1.0])
        assert list(m.counts(100)) == list(m.counts(100))

    def test_restrict_drops_lost_rank(self):
        m = RankSpeedModel.from_rates([0.5, 1.0, 1.5, 1.0])
        r = m.restrict([0, 2, 3])
        assert r.p == 3
        assert np.mean(r.speeds) == pytest.approx(1.0)
        # Relative ordering of the survivors is preserved.
        assert r.speeds[0] < r.speeds[2] < r.speeds[1]

    def test_blend_moves_toward_new_rates(self):
        m = RankSpeedModel.from_rates([1.0, 1.0])
        b = m.blend([0.5, 1.5], alpha=0.5)
        assert b.speeds[0] < 1.0 < b.speeds[1]

    def test_dict_round_trip(self):
        m = RankSpeedModel.from_rates([0.7, 1.3], floor=0.6, ceil=1.8)
        d = m.to_dict()
        r = RankSpeedModel.from_dict(d)
        assert r == m
        assert d["shares"] == pytest.approx(list(m.shares))

    def test_uniform(self):
        m = RankSpeedModel.uniform(5)
        assert m.shares == pytest.approx((0.2,) * 5)


class TestThroughputRates:
    def test_rates_proportional_to_rows_over_busy(self):
        rates = throughput_rates([100, 100], [1.0, 2.0])
        assert rates[0] == pytest.approx(2 * rates[1])

    def test_idle_rank_gets_mean_of_valid(self):
        rates = throughput_rates([100, 0, 100], [1.0, 0.0, 1.0])
        assert rates[1] == pytest.approx((rates[0] + rates[2]) / 2)

    def test_all_invalid_falls_back_to_ones(self):
        assert throughput_rates([0, 0], [0.0, 0.0]) == pytest.approx([1, 1])


class TestHeteroState:
    def test_observe_builds_then_blends(self):
        st = HeteroState(2)
        first = st.observe([(100, 2.0), (100, 1.0)])
        assert first.speeds[0] < first.speeds[1]
        # A contradicting second sample moves the model but, blended,
        # does not fully flip to the new snapshot.
        second = st.observe([(100, 1.0), (100, 2.0)])
        snapshot = RankSpeedModel.from_rates([100 / 1.0, 100 / 2.0])
        assert second.speeds[0] > first.speeds[0]
        assert second.speeds[0] < snapshot.speeds[0]


# ---------------------------------------------------------------------------
# weighted pivots, imbalance, share bounds
# ---------------------------------------------------------------------------


class TestWeightedSelection:
    def test_uniform_shares_reduce_to_legacy_pivots(self):
        p, rho = 4, 2
        pool = np.sort(np.random.default_rng(0).integers(0, 1000, p * p))
        legacy = _select_pivots(pool, p, rho, None)
        uniform = _select_pivots(pool, p, rho, np.full(p, 1 / p))
        assert np.array_equal(legacy, uniform)

    def test_weighted_pivots_shift_toward_small_share(self):
        p = 4
        pool = np.arange(p * p, dtype=np.int64)
        skew = _select_pivots(pool, p, 0, np.asarray([0.1, 0.3, 0.3, 0.3]))
        flat = _select_pivots(pool, p, 0, np.full(p, 0.25))
        assert skew[0] < flat[0]

    def test_relative_imbalance_uniform_formula(self):
        sizes = np.asarray([90, 100, 110])
        assert relative_imbalance(sizes) == pytest.approx(10 / 100)

    def test_relative_imbalance_zero_at_exact_targets(self):
        sizes = np.asarray([50, 100, 150])
        assert relative_imbalance(sizes, sizes.copy()) == 0.0
        # The same layout is heavily imbalanced vs uniform targets.
        assert relative_imbalance(sizes) == pytest.approx(0.5)


class TestWeightedShareBounds:
    def test_uniform_path_unchanged(self):
        # weights=None must keep the historical layout (remainder on the
        # lowest-index shares).
        assert share_bounds(10, 3, 0) == share_bounds(10, 3, 0, None)
        lo, hi = share_bounds(10, 3, 0)
        assert (lo, hi) == (0, 4)

    @pytest.mark.parametrize("nrows", [0, 1, 7, 1000])
    def test_weighted_shares_partition_the_range(self, nrows):
        weights = [0.5, 1.0, 2.0, 1.0]
        bounds = [
            share_bounds(nrows, 4, i, weights) for i in range(4)
        ]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == nrows
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo  # contiguous, disjoint, ordered

    def test_weighted_shares_track_proportions(self):
        weights = [1.0, 3.0]
        lo, hi = share_bounds(1000, 2, 0, weights)
        assert hi - lo == 250

    def test_reshard_plan_carries_weights(self):
        plan = ReshardPlan.after_loss(
            4, [1], "/a", "/b", weights=[0.2, 0.5, 0.3]
        )
        assert plan.weights == (0.2, 0.5, 0.3)
        assert plan.new_width == 3

    def test_reshard_plan_validates_weights(self):
        with pytest.raises(ValueError):
            ReshardPlan.after_loss(4, [1], "/a", "/b", weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            ReshardPlan.after_loss(
                4, [1], "/a", "/b", weights=[1.0, -1.0, 1.0]
            )


# ---------------------------------------------------------------------------
# fault grammar + metering
# ---------------------------------------------------------------------------


class TestFaultGrammar:
    def test_parse_slow(self):
        plan = FaultPlan.parse("slow@r0x2")
        (f,) = plan.faults
        assert isinstance(f, SlowFault)
        assert (f.rank, f.factor, f.iteration) == (0, 2.0, None)

    def test_parse_slow_with_iteration_and_attempt(self):
        (f,) = FaultPlan.parse("slow@r2x1.5i3a1").faults
        assert (f.rank, f.factor, f.iteration, f.attempt) == (2, 1.5, 3, 1)

    def test_parse_hang(self):
        (f,) = FaultPlan.parse("hang@r1s5").faults
        assert isinstance(f, HangFault)
        assert (f.rank, f.superstep) == (1, 5)

    def test_describe_round_trips(self):
        spec = "slow@r0x2;hang@r1s5a1;slow@r2x1.5i3"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.describe()).faults == plan.faults

    def test_slow_requires_factor(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("slow@r0")

    def test_hang_requires_superstep(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("hang@r1")


class TestSlowMetering:
    def _slow_run(self, relation, backend):
        return build(
            relation, backend, faults=FaultPlan.parse("slow@r0x2"),
            recovery=RecoveryPolicy(max_retries=0), audit=True,
        )

    def test_slow_doubles_the_victims_busy_time(self, relation):
        cube = self._slow_run(relation, "thread")
        busy = cube.metrics.rank_busy_seconds
        assert busy[0] / busy[1] == pytest.approx(2.0, rel=0.05)
        assert cube.metrics.audit["ok"]

    def test_slow_is_deterministic(self, relation):
        a = self._slow_run(relation, "thread").metrics.simulated_seconds
        b = self._slow_run(relation, "thread").metrics.simulated_seconds
        assert a == b

    def test_slow_does_not_change_content(self, relation):
        clean = build(relation, "thread", audit=True)
        slow = self._slow_run(relation, "thread")
        assert content_fingerprint(slow) == content_fingerprint(clean)

    @requires_fork
    def test_slow_metering_matches_across_backends(self, relation):
        thread = self._slow_run(relation, "thread").metrics
        proc = self._slow_run(relation, "process").metrics
        assert proc.simulated_seconds == pytest.approx(
            thread.simulated_seconds, rel=1e-9
        )
        assert proc.rank_busy_seconds == pytest.approx(
            thread.rank_busy_seconds, rel=1e-9
        )


# ---------------------------------------------------------------------------
# supervisor deadline boundary
# ---------------------------------------------------------------------------


class _FakeConn:
    """Never delivers until ``deliver_on_poll`` polls have happened."""

    def __init__(self, deliver_after=None):
        self.polls = 0
        self.deliver_after = deliver_after

    def poll(self, timeout=0.0):
        self.polls += 1
        return (
            self.deliver_after is not None
            and self.polls > self.deliver_after
        )

    def recv(self):
        return ("step", "payload")


class _AliveProc:
    @staticmethod
    def is_alive():
        return True


class TestSupervisorDeadlineBoundary:
    def _supervisor(self, ticks):
        from repro.mpi.backends import Supervisor

        it = iter(ticks)
        return Supervisor(
            {0: _AliveProc()},
            heartbeat_interval=10.0,
            suspect_after=60.0,
            now=lambda: next(it),
        )

    def test_exactly_at_deadline_declares_hung(self):
        # now() calls: deadline anchor (0), budget, deadline check (60.0:
        # exactly at the deadline must already count as hung).
        sup = self._supervisor([0.0, 50.0, 60.0])
        with pytest.raises(RankHung) as err:
            sup.await_message(_FakeConn(), 0)
        assert err.value.rank == 0

    def test_just_under_deadline_still_delivers(self):
        # Third now() lands epsilon under the deadline -> one more poll
        # round runs and the buffered message is delivered, not dropped.
        sup = self._supervisor([0.0, 50.0, 60.0 - 1e-6, 59.0])
        msg = sup.await_message(_FakeConn(deliver_after=1), 0)
        assert msg == ("step", "payload")


# ---------------------------------------------------------------------------
# backoff jitter
# ---------------------------------------------------------------------------


class TestBackoffJitter:
    def test_legacy_values_without_jitter(self):
        pol = RecoveryPolicy(backoff_seconds=2.0, backoff_growth=3.0)
        assert pol.backoff_for(0) == 0.0
        assert pol.backoff_for(1) == 2.0
        assert pol.backoff_for(2) == 6.0
        assert pol.backoff_for(3) == 18.0

    def test_jitter_bounded_and_seed_deterministic(self):
        pol = RecoveryPolicy(
            backoff_seconds=2.0, backoff_growth=3.0, backoff_jitter=True
        )
        for attempt in (1, 2, 3):
            base = 2.0 * 3.0 ** (attempt - 1)
            v = pol.backoff_for(attempt, seed=7)
            assert 0.0 <= v <= base
            assert v == pol.backoff_for(attempt, seed=7)

    def test_jitter_varies_with_seed_and_attempt(self):
        pol = RecoveryPolicy(backoff_seconds=10.0, backoff_jitter=True)
        assert pol.backoff_for(1, seed=1) != pol.backoff_for(1, seed=2)
        assert pol.backoff_for(1, seed=1) != pol.backoff_for(2, seed=1)


# ---------------------------------------------------------------------------
# hetero end-to-end + speculative races
# ---------------------------------------------------------------------------


class TestHeteroBuild:
    def test_same_content_as_uniform(self, relation):
        clean = build(relation, "thread", audit=True)
        hetero = build(relation, "thread", hetero=True, audit=True)
        assert content_fingerprint(hetero) == content_fingerprint(clean)
        assert hetero.metrics.audit["ok"]
        m = hetero.metrics.speed_model
        assert m is not None
        assert len(m["speeds"]) == 3
        assert np.mean(m["speeds"]) == pytest.approx(1.0)
        assert len(hetero.metrics.rank_busy_seconds) == 3

    def test_uniform_build_publishes_no_model(self, relation):
        assert build(relation, "thread").metrics.speed_model is None

    @requires_fork
    def test_process_backend_same_content(self, relation):
        clean = build(relation, "thread", audit=True)
        hetero = build(relation, "process", hetero=True, audit=True)
        assert content_fingerprint(hetero) == content_fingerprint(clean)
        assert hetero.metrics.speed_model is not None


class TestSpeculativeRace:
    def _race(self, relation, backend, faults, **kw):
        with tempfile.TemporaryDirectory() as ck:
            return build(
                relation, backend, hetero=True,
                faults=FaultPlan.parse(faults), checkpoint_dir=ck,
                recovery=RecoveryPolicy(speculate=True), audit=True, **kw,
            )

    def test_recovered_straggler_discards_duplicate_once(self, relation):
        clean = build(relation, "thread", audit=True)
        cube = self._race(relation, "thread", "hang@r1s20a0")
        m = cube.metrics
        # The straggler recovered: the full-width retry wins the race,
        # the width-(p-1) clone's duplicate result is discarded exactly
        # once, and both raced attempts' costs are banked.
        assert m.speculations == 1
        assert m.speculation_discards == 1
        assert m.attempts == 3
        assert m.final_width == 3
        assert m.ranks_lost == []
        assert m.recovered_seconds > 0
        assert m.audit["ok"]
        assert content_fingerprint(cube) == content_fingerprint(clean)
        assert "speculated 1 race(s)" in m.summary()

    def test_backup_wins_when_straggler_hangs_again(self, relation):
        clean = build(relation, "thread", audit=True)
        cube = self._race(relation, "thread", "hang@r1s20a0;hang@r1s2a1")
        m = cube.metrics
        assert m.speculations == 1
        assert m.speculation_discards == 0
        assert m.attempts == 3
        assert m.final_width == 2
        assert m.ranks_lost == [1]
        assert m.audit["ok"]
        assert content_fingerprint(cube) == content_fingerprint(clean)

    def test_no_checkpoints_means_no_race(self, relation):
        # Without a checkpoint root there is nothing to clone: the hang
        # falls back to a plain transient retry.
        cube = build(
            relation, "thread", hetero=True,
            faults=FaultPlan.parse("hang@r1s20a0"),
            recovery=RecoveryPolicy(speculate=True), audit=True,
        )
        m = cube.metrics
        assert m.speculations == 0
        assert m.attempts == 2
        assert m.final_width == 3
        assert m.audit["ok"]

    @requires_fork
    def test_race_on_process_backend(self, relation):
        clean = build(relation, "thread", audit=True)
        cube = self._race(relation, "process", "hang@r1s20a0")
        m = cube.metrics
        assert m.speculations == 1
        assert m.speculation_discards == 1
        assert m.final_width == 3
        assert m.audit["ok"]
        assert content_fingerprint(cube) == content_fingerprint(clean)
