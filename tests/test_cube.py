"""Tests for the Procedure 1 driver (build_data_cube / build_partial_cube)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import reference_cube
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube, build_partial_cube, split_even
from repro.core.views import all_views
from repro.storage.table import Relation
from tests.conftest import make_relation

CARDS = (12, 8, 5, 3)


@pytest.fixture(scope="module")
def dataset():
    return make_relation(4000, CARDS, seed=21)


@pytest.fixture(scope="module")
def oracle(dataset):
    return reference_cube(dataset, CARDS)


class TestSplitEven:
    def test_even_division(self):
        rel = make_relation(100, (4,))
        chunks = split_even(rel, 4)
        assert [c.nrows for c in chunks] == [25, 25, 25, 25]

    def test_remainder_spread_low_ranks(self):
        rel = make_relation(10, (4,))
        chunks = split_even(rel, 3)
        assert [c.nrows for c in chunks] == [4, 3, 3]

    def test_more_ranks_than_rows(self):
        rel = make_relation(2, (4,))
        chunks = split_even(rel, 5)
        assert [c.nrows for c in chunks] == [1, 1, 0, 0, 0]

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            split_even(make_relation(2, (4,)), 0)


class TestFullCube:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_reference(self, dataset, oracle, p):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=p))
        assert cube.view_count == 2 ** len(CARDS)
        for view, want in oracle.items():
            assert cube.view_relation(view).same_content(want), view

    def test_every_view_globally_sorted_within_ranks(self, dataset):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=4))
        for rank_views in cube.rank_views:
            for data in rank_views.values():
                assert data.is_sorted()

    def test_keys_unique_per_view(self, dataset):
        """Full aggregation: no group-by key may appear twice anywhere."""
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=4))
        for view in cube.views:
            keys = np.concatenate(
                [rv[view].keys for rv in cube.rank_views]
            )
            assert np.unique(keys).size == keys.size, view

    def test_total_rows_matches_reference(self, dataset, oracle):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=3))
        want = sum(rel.nrows for rel in oracle.values())
        assert cube.total_rows() == want
        assert cube.metrics.output_rows == want

    def test_distribution_reasonably_balanced(self, dataset):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=4))
        top = tuple(range(len(CARDS)))
        dist = cube.distribution(top)
        assert dist.sum() == cube.view_rows(top)
        assert dist.max() <= dist.mean() * 1.5

    def test_metrics_populated(self, dataset):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=4))
        m = cube.metrics
        assert m.simulated_seconds > 0
        assert m.comm_bytes > 0
        assert m.disk_blocks > 0
        assert m.view_count == 16
        assert any("merge" in k for k in m.phase_seconds)

    def test_describe(self, dataset):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=2))
        text = cube.describe()
        assert "16 views" in text and "p=2" in text

    def test_schedule_trees_returned(self, dataset):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=2))
        assert len(cube.schedule_trees) == len(CARDS)  # one per partition
        for tree in cube.schedule_trees:
            tree.validate()

    def test_merge_reports_cover_views(self, dataset):
        cube = build_data_cube(dataset, CARDS, MachineSpec(p=4))
        reported = set()
        for report in cube.merge_reports:
            reported.update(report.cases)
        assert reported == set(cube.views)

    @pytest.mark.parametrize("agg", ["sum", "count", "min", "max"])
    def test_aggregates(self, dataset, agg):
        cube = build_data_cube(
            dataset, CARDS, MachineSpec(p=3), CubeConfig(agg=agg)
        )
        want = reference_cube(dataset, CARDS, agg=agg)
        for view, rel in want.items():
            assert cube.view_relation(view).same_content(rel), (agg, view)

    def test_single_row_input(self):
        rel = make_relation(1, CARDS)
        cube = build_data_cube(rel, CARDS, MachineSpec(p=3))
        assert cube.total_rows() == 16  # one row per view

    def test_empty_input(self):
        rel = Relation.empty(len(CARDS))
        cube = build_data_cube(rel, CARDS, MachineSpec(p=3))
        assert cube.total_rows() == 0

    def test_one_dimension(self):
        rel = make_relation(200, (7,))
        cube = build_data_cube(rel, (7,), MachineSpec(p=2))
        want = reference_cube(rel, (7,))
        for view, w in want.items():
            assert cube.view_relation(view).same_content(w)

    def test_skewed_data(self):
        cards = (16, 8, 4)
        rel = make_relation(3000, cards, seed=3, alphas=(3.0, 1.0, 0.0))
        cube = build_data_cube(rel, cards, MachineSpec(p=4))
        want = reference_cube(rel, cards)
        for view, w in want.items():
            assert cube.view_relation(view).same_content(w), view

    def test_gamma_affects_merge_cases(self, dataset):
        tight = build_data_cube(
            dataset, CARDS, MachineSpec(p=4),
            CubeConfig(gamma_merge=0.0005),
        )
        loose = build_data_cube(
            dataset, CARDS, MachineSpec(p=4),
            CubeConfig(gamma_merge=0.9),
        )
        tight3 = sum(r.count("case3") for r in tight.merge_reports)
        loose3 = sum(r.count("case3") for r in loose.merge_reports)
        assert tight3 > loose3

    def test_estimate_methods_all_work(self, dataset, oracle):
        for method in ("sample", "fm", "analytic", "exact"):
            cube = build_data_cube(
                dataset, CARDS, MachineSpec(p=2), estimate_method=method
            )
            top = tuple(range(len(CARDS)))
            assert cube.view_relation(top).same_content(oracle[top])


class TestValidation:
    def test_rejects_wrong_card_count(self, dataset):
        with pytest.raises(ValueError, match="cardinalities"):
            build_data_cube(dataset, (12, 8, 5), MachineSpec(p=2))

    def test_rejects_increasing_cards(self, dataset):
        with pytest.raises(ValueError, match="non-increasing"):
            build_data_cube(dataset, (3, 5, 8, 12), MachineSpec(p=2))

    def test_rejects_out_of_range_codes(self):
        rel = Relation(np.array([[5]], dtype=np.int64), np.ones(1))
        with pytest.raises(ValueError, match="dimension codes"):
            build_data_cube(rel, (4,), MachineSpec(p=1))

    def test_rejects_zero_cardinality(self, dataset):
        with pytest.raises(ValueError):
            build_data_cube(dataset, (12, 8, 5, 0), MachineSpec(p=2))

    def test_rejects_empty_selection(self, dataset):
        with pytest.raises(ValueError, match="selected"):
            build_data_cube(dataset, CARDS, MachineSpec(p=2), selected=[])

    def test_rejects_out_of_range_selected_view(self, dataset):
        with pytest.raises(ValueError, match="out of range"):
            build_data_cube(
                dataset, CARDS, MachineSpec(p=2), selected=[(9,)]
            )


class TestPartialCube:
    def test_only_selected_materialised(self, dataset, oracle):
        selected = [(0, 1), (2,), (1, 3), ()]
        cube = build_partial_cube(
            dataset, CARDS, selected, MachineSpec(p=4)
        )
        assert set(cube.views) == set(selected)
        for view in selected:
            assert cube.view_relation(view).same_content(oracle[view])

    def test_duplicate_selection_deduped(self, dataset):
        cube = build_partial_cube(
            dataset, CARDS, [(0,), (0,), (1, 0)], MachineSpec(p=2)
        )
        assert set(cube.views) == {(0,), (0, 1)}

    def test_selection_with_root(self, dataset, oracle):
        top = tuple(range(len(CARDS)))
        cube = build_partial_cube(
            dataset, CARDS, [top, (0,)], MachineSpec(p=2)
        )
        assert cube.view_relation(top).same_content(oracle[top])

    @settings(max_examples=8)
    @given(st.data())
    def test_random_selections(self, dataset, oracle, data):
        pool = all_views(len(CARDS))
        selected = data.draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=8)
        )
        cube = build_partial_cube(
            dataset, CARDS, selected, MachineSpec(p=3)
        )
        for view in cube.views:
            assert cube.view_relation(view).same_content(oracle[view])


class TestHypothesisFullCube:
    @settings(max_examples=10)
    @given(
        n=st.integers(0, 600),
        p=st.integers(1, 6),
        seed=st.integers(0, 5),
    )
    def test_random_inputs_match_reference(self, n, p, seed):
        cards = (9, 6, 4)
        rel = make_relation(n, cards, seed=seed)
        cube = build_data_cube(rel, cards, MachineSpec(p=p))
        want = reference_cube(rel, cards)
        for view, w in want.items():
            assert cube.view_relation(view).same_content(w), (n, p, view)
