"""Tests for CSV ingestion / view export (repro.storage.relio)."""

import numpy as np
import pytest

from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.storage.relio import (
    EncodedDataset,
    encode_dimensions,
    read_csv,
    write_view_csv,
)

CSV_TEXT = """region,store,channel,revenue
east,s1,web,10.5
west,s2,web,3.25
east,s1,app,2.0
east,s3,web,7.75
north,s2,app,1.0
west,s1,web,4.5
"""


@pytest.fixture()
def csv_path(tmp_path):
    path = tmp_path / "facts.csv"
    path.write_text(CSV_TEXT)
    return str(path)


class TestEncodeDimensions:
    def test_cardinality_ordering(self):
        ds = encode_dimensions(
            [["a", "b"], ["x", "x"], ["p", "q"]],
            ["two1", "one", "two2"],
            [1.0, 2.0],
        )
        # ties keep original position: two1 before two2, 'one' last
        assert ds.names == ("two1", "two2", "one")
        assert ds.cardinalities == (2, 2, 1)

    def test_codes_within_cardinality(self):
        ds = encode_dimensions(
            [["a", "b", "a", "c"]], ["d"], [1, 2, 3, 4]
        )
        assert ds.relation.dims[:, 0].max() < ds.cardinalities[0]

    def test_decode_roundtrip(self):
        raw = ["banana", "apple", "banana", "cherry"]
        ds = encode_dimensions([raw], ["fruit"], [1, 1, 1, 1])
        decoded = ds.decode(0, ds.relation.dims[:, 0])
        assert decoded == raw

    def test_deterministic_encoding(self):
        a = encode_dimensions([["b", "a"]], ["x"], [1, 2])
        b = encode_dimensions([["b", "a"]], ["x"], [1, 2])
        assert np.array_equal(a.relation.dims, b.relation.dims)
        assert a.dictionaries == b.dictionaries

    def test_validation(self):
        with pytest.raises(ValueError, match="names"):
            encode_dimensions([["a"]], ["x", "y"], [1.0])
        with pytest.raises(ValueError, match="values"):
            encode_dimensions([["a", "b"]], ["x"], [1.0])

    def test_view_of_and_dim_index(self):
        ds = encode_dimensions(
            [["a", "b"], ["x", "y"]], ["one", "two"], [1, 2]
        )
        assert ds.view_of("one", "two") == (0, 1)
        with pytest.raises(KeyError):
            ds.dim_index("three")


class TestReadCsv:
    def test_load_shapes(self, csv_path):
        ds = read_csv(csv_path, ["region", "store", "channel"], "revenue")
        assert ds.relation.nrows == 6
        # cardinalities: region 3, store 3, channel 2 -> region/store tie
        assert ds.cardinalities == (3, 3, 2)
        assert ds.names[2] == "channel"
        assert ds.measure_name == "revenue"

    def test_measure_values(self, csv_path):
        ds = read_csv(csv_path, ["region"], "revenue")
        assert ds.relation.measure.sum() == pytest.approx(29.0)

    def test_missing_column(self, csv_path):
        with pytest.raises(ValueError, match="missing columns"):
            read_csv(csv_path, ["region", "nope"], "revenue")

    def test_non_numeric_measure(self, csv_path):
        with pytest.raises(ValueError, match="not numeric"):
            read_csv(csv_path, ["revenue"], "region")

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty CSV"):
            read_csv(str(empty), ["a"], "m")


class TestEndToEnd:
    def test_csv_to_cube_to_csv(self, csv_path, tmp_path):
        """The full relational loop: CSV in, cube, view CSV out."""
        ds = read_csv(csv_path, ["region", "store", "channel"], "revenue")
        cube = build_data_cube(
            ds.relation, ds.cardinalities, MachineSpec(p=2)
        )
        view = ds.view_of("region")
        rel = cube.view_relation(view)
        out = write_view_csv(
            str(tmp_path / "by_region.csv"), rel, view, ds
        )
        import csv as csvmod

        with open(out) as fh:
            rows = list(csvmod.DictReader(fh))
        by_region = {row["region"]: float(row["revenue"]) for row in rows}
        assert by_region["east"] == pytest.approx(10.5 + 2.0 + 7.75)
        assert by_region["west"] == pytest.approx(3.25 + 4.5)
        assert by_region["north"] == pytest.approx(1.0)

    def test_export_validation(self, csv_path, tmp_path):
        ds = read_csv(csv_path, ["region", "channel"], "revenue")
        cube = build_data_cube(
            ds.relation, ds.cardinalities, MachineSpec(p=2)
        )
        rel = cube.view_relation((0,))
        with pytest.raises(ValueError, match="wide"):
            write_view_csv(str(tmp_path / "x.csv"), rel, (0, 1), ds)
