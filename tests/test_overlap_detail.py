"""Finer-grained tests for the overlap analysis internals."""

import pytest

from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.core.overlap import OverlapReport, _split_phases, analyze_overlap
from tests.conftest import make_relation


class TestSplitPhases:
    def test_parses_indexed_phases(self):
        out = _split_phases(
            {"merge[0]": 1.0, "partition-sort[3]": 2.0, "startup": 9.0}
        )
        assert out == {("merge", 0): 1.0, ("partition-sort", 3): 2.0}

    def test_ignores_unindexed(self):
        assert _split_phases({"seq-sort": 1.0}) == {}


class TestReportArithmetic:
    def test_masked_fraction_zero_comm(self):
        report = OverlapReport(1.0, 0.0, 0.0, 1.0, [])
        assert report.masked_fraction == 0.0
        assert report.speedup_gain() == 1.0

    def test_speedup_gain(self):
        report = OverlapReport(2.0, 1.0, 0.5, 1.5, [])
        assert report.speedup_gain() == pytest.approx(2.0 / 1.5)


class TestPerPartitionStructure:
    @pytest.fixture(scope="class")
    def report(self):
        rel = make_relation(6000, (12, 8, 6, 4), seed=13)
        cube = build_data_cube(rel, (12, 8, 6, 4), MachineSpec(p=8))
        return analyze_overlap(cube)

    def test_one_row_per_partition(self, report):
        ids = [i for i, _, _, _ in report.per_partition]
        assert ids == sorted(set(ids))
        assert len(ids) == 4  # d partitions

    def test_masked_bounded_by_both_sides(self, report):
        for _, merge_comm, next_compute, masked in report.per_partition:
            assert masked <= merge_comm + 1e-12
            assert masked <= next_compute + 1e-12

    def test_totals_match_details(self, report):
        assert report.maskable_seconds == pytest.approx(
            sum(m for _, _, _, m in report.per_partition)
        )
        assert report.merge_comm_seconds == pytest.approx(
            sum(c for _, c, _, _ in report.per_partition)
        )

    def test_overlapped_never_negative(self, report):
        assert report.overlapped_seconds >= 0
