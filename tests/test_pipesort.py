"""Tests for repro.core.pipesort: schedule trees (phase 1) and pipelined
execution (phase 2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.reference import reference_view
from repro.core.estimate import estimate_view_sizes
from repro.core.pipesort import (
    ScheduleTree,
    build_schedule_tree,
    execute_schedule,
    scan_cost,
    sort_cost,
)
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import all_views, is_prefix
from repro.storage.codec import KeyCodec
from repro.storage.disk import LocalDisk
from repro.storage.scan import aggregate_sorted_keys
from tests.conftest import make_relation


def uniform_estimates(views, size=100.0):
    return {v: size * max(len(v), 1) for v in views}


def build_full(d, estimates=None):
    views = all_views(d)
    root = tuple(range(d))
    if estimates is None:
        estimates = uniform_estimates(views)
    return build_schedule_tree(views, root, estimates, root)


class TestCosts:
    def test_scan_cheaper_than_sort(self):
        for size in (1, 10, 1e6):
            assert scan_cost(size) < sort_cost(size)

    def test_costs_monotone(self):
        assert sort_cost(100) < sort_cost(1000)
        assert scan_cost(100) < scan_cost(1000)


class TestTreeStructure:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_spans_all_views(self, d):
        tree = build_full(d)
        assert set(tree.views()) == set(all_views(d))
        tree.validate()

    def test_every_nonroot_has_parent_one_level_up(self):
        tree = build_full(4)
        for node in tree.nodes.values():
            if node.parent is None:
                continue
            assert len(node.parent) == len(node.view) + 1
            assert set(node.view) < set(node.parent)

    def test_at_most_one_scan_child(self):
        tree = build_full(5)
        for node in tree.nodes.values():
            scans = [
                c for c in node.children if tree.nodes[c].mode == "scan"
            ]
            assert len(scans) <= 1

    def test_scan_children_are_order_prefixes(self):
        tree = build_full(5)
        for node in tree.nodes.values():
            if node.mode == "scan":
                parent = tree.nodes[node.parent]
                assert is_prefix(node.order, parent.order)

    def test_root_chain_respects_root_order(self):
        root_order = (0, 1, 2, 3)
        tree = build_full(4)
        node = tree.nodes[tree.root]
        while True:
            scans = [
                c for c in node.children if tree.nodes[c].mode == "scan"
            ]
            if not scans:
                break
            node = tree.nodes[scans[0]]
            assert is_prefix(node.order, root_order)

    def test_orders_cover_views(self):
        tree = build_full(4)
        for node in tree.nodes.values():
            assert set(node.order) == set(node.view)

    def test_pipelines_partition_views(self):
        tree = build_full(4)
        chains = tree.pipelines()
        flat = [v for chain in chains for v in chain]
        assert sorted(flat) == sorted(tree.views())

    def test_preorder_parents_first(self):
        tree = build_full(4)
        seen = set()
        for node in tree.preorder():
            if node.parent is not None:
                assert node.parent in seen
            seen.add(node.view)

    def test_estimated_cost_beats_all_sort(self):
        """The matcher's tree must not cost more than sorting every edge."""
        views = all_views(4)
        est = estimate_view_sizes(
            make_relation(2000, (8, 6, 4, 3)).dims, (8, 6, 4, 3), views,
            method="exact",
        )
        tree = build_schedule_tree(views, (0, 1, 2, 3), est)
        all_sort = sum(
            sort_cost(est[n.parent])
            for n in tree.nodes.values()
            if n.parent is not None
        )
        assert tree.estimated_cost(est) <= all_sort

    def test_describe_mentions_views(self):
        text = build_full(3).describe()
        assert "ABC" in text and "ALL" in text and "[scan]" in text

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError, match="root"):
            build_schedule_tree([(0,)], (0, 1), {})

    def test_gappy_levels_rejected(self):
        with pytest.raises(ValueError):
            build_schedule_tree(
                [(0, 1, 2), (0,)], (0, 1, 2), {}, (0, 1, 2)
            )

    def test_bad_root_order_rejected(self):
        with pytest.raises(ValueError, match="root order"):
            build_schedule_tree(all_views(2), (0, 1), {}, (0, 2))


class TestScheduleTreeAPI:
    def test_add_validations(self):
        tree = ScheduleTree((0, 1, 2), (0, 1, 2))
        tree.add((0, 1), (0, 1, 2), "scan")
        with pytest.raises(ValueError, match="already scheduled"):
            tree.add((0, 1), (0, 1, 2), "sort")
        with pytest.raises(ValueError, match="not in tree"):
            tree.add((), (1,), "scan")
        with pytest.raises(ValueError, match="bad edge mode"):
            tree.add((1,), (0, 1, 2), "teleport")
        with pytest.raises(ValueError, match="proper subset"):
            tree.add((0, 2), (0, 1), "sort")

    def test_two_scan_children_rejected(self):
        tree = ScheduleTree((0, 1), (0, 1))
        tree.add((0,), (0, 1), "scan")
        tree.add((1,), (0, 1), "scan")
        with pytest.raises(ValueError, match="scan"):
            tree.assign_orders()

    def test_contains_and_len(self):
        tree = ScheduleTree((0, 1), (0, 1))
        assert (0, 1) in tree
        assert (0,) not in tree
        assert len(tree) == 1


def run_phase2(relation, cards, tree=None, agg="sum"):
    d = len(cards)
    root = tuple(range(d))
    codec = KeyCodec(cards)
    keys = codec.pack(relation.dims)
    order = np.argsort(keys, kind="stable")
    keys, measure = aggregate_sorted_keys(
        keys[order], relation.measure[order], agg
    )
    root_data = ViewData(root, keys, measure)
    if tree is None:
        tree = build_full(d, uniform_estimates(all_views(d)))
    disk = LocalDisk(block_size=64)
    return execute_schedule(tree, root_data, cards, disk, 1 << 20, agg), disk


class TestPhase2:
    @pytest.mark.parametrize("agg", ["sum", "min", "max"])
    def test_all_views_match_reference(self, agg):
        cards = (8, 5, 4, 3)
        relation = make_relation(3000, cards, seed=5)
        results, _ = run_phase2(relation, cards, agg=agg)
        for view, data in results.items():
            got = data.to_relation(cards)
            want = reference_view(relation, cards, view, agg)
            assert got.same_content(want), view

    def test_views_sorted_under_their_orders(self):
        cards = (8, 5, 4)
        relation = make_relation(1000, cards, seed=2)
        results, _ = run_phase2(relation, cards)
        for data in results.values():
            assert data.is_sorted()

    def test_empty_input(self):
        cards = (4, 3)
        relation = make_relation(0, cards)
        results, _ = run_phase2(relation, cards)
        assert all(d.nrows == 0 for d in results.values())

    def test_disk_charged_for_stores(self):
        cards = (8, 5, 4)
        relation = make_relation(1000, cards, seed=2)
        _, disk = run_phase2(relation, cards)
        assert disk.stats.blocks_written > 0
        assert disk.work.seconds > 0

    def test_wrong_root_order_raises(self):
        cards = (4, 3)
        tree = build_full(2)
        root_data = ViewData((1, 0), np.zeros(1, np.int64), np.zeros(1))
        with pytest.raises(ValueError, match="root data order"):
            execute_schedule(tree, root_data, cards, LocalDisk(8), 100)

    @given(st.integers(0, 400), st.integers(1, 4))
    def test_random_shapes_match_reference(self, n, d):
        cards = tuple([7, 5, 3, 2][:d])
        relation = make_relation(n, cards, seed=n + d)
        results, _ = run_phase2(relation, cards)
        assert len(results) == 2**d
        for view in [(), tuple(range(d))]:
            got = results[view].to_relation(cards)
            want = reference_view(relation, cards, view, "sum")
            assert got.same_content(want)


class TestDotExport:
    def test_dot_contains_all_views_and_styles(self):
        tree = build_full(3)
        dot = tree.to_dot()
        assert dot.startswith("digraph")
        for view in all_views(3):
            from repro.core.views import view_name

            assert f'"{view_name(view)}"' in dot
        assert "style=solid" in dot  # at least one scan edge
        assert "style=dashed" in dot  # at least one sort edge

    def test_dot_edge_count(self):
        tree = build_full(4)
        dot = tree.to_dot()
        assert dot.count("->") == len(tree) - 1
