"""Tests for the benchmark harness plumbing (scale, series, tables)."""

import numpy as np
import pytest

from repro.bench.harness import (
    BenchScale,
    Series,
    SeriesPoint,
    dataset_for,
    scale_from_env,
    speedup_sweep,
)
from repro.bench.reporting import format_kv_block, format_series_table
from repro.data.generator import DatasetSpec
from tests.conftest import make_relation


class TestScale:
    def test_defaults(self):
        scale = BenchScale()
        assert scale.n_base == 25_000
        assert max(scale.processors) == 16
        assert scale.scale_factor == pytest.approx(0.025)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "4000")
        monkeypatch.setenv("REPRO_BENCH_MAXP", "4")
        scale = scale_from_env()
        assert scale.n_base == 4000
        assert scale.processors == (1, 2, 4)

    def test_maxp_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MAXP", "0")
        assert scale_from_env().processors == (1,)


class TestDatasetCache:
    def test_same_spec_same_object(self):
        spec = DatasetSpec(100, (8, 4), (0.0, 0.0), seed=1)
        assert dataset_for(spec) is dataset_for(spec)

    def test_different_seed_different_data(self):
        a = dataset_for(DatasetSpec(100, (8, 4), (0.0, 0.0), seed=1))
        b = dataset_for(DatasetSpec(100, (8, 4), (0.0, 0.0), seed=2))
        assert not a.same_content(b)


class TestSpeedupSweep:
    def test_points_and_speedups(self):
        cards = (10, 6, 4)
        rel = make_relation(1200, cards, seed=60)
        series = speedup_sweep("t", rel, cards, processors=(1, 2))
        assert series.xs() == [1, 2]
        assert all(pt.speedup is not None for pt in series.points)
        assert all(pt.comm_mb is not None for pt in series.points)
        assert series.points[0].extra["views"] == 8

    def test_explicit_denominator(self):
        cards = (8, 4)
        rel = make_relation(400, cards, seed=61)
        series = speedup_sweep(
            "t", rel, cards, processors=(2,), sequential_seconds=100.0
        )
        pt = series.points[0]
        assert pt.speedup == pytest.approx(100.0 / pt.seconds)


class TestFormatting:
    def series(self):
        s = Series(label="a", x_name="p")
        s.points.append(SeriesPoint(x=1, seconds=2.5, speedup=1.0, comm_mb=0.1))
        s.points.append(SeriesPoint(x=2, seconds=1.25, speedup=2.0, comm_mb=0.2))
        return [s]

    def test_table_alignment_and_content(self):
        text = format_series_table("T", self.series(), show_comm=True)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a [s]" in lines[1] and "a [MB]" in lines[1]
        assert "2.50" in text and "1.25" in text

    def test_missing_points_dash(self):
        s1, = self.series()
        s2 = Series(label="b", x_name="p",
                    points=[SeriesPoint(x=1, seconds=9.0, speedup=0.5)])
        text = format_series_table("T", [s1, s2])
        assert "-" in text.splitlines()[-1]  # x=2 missing for b

    def test_empty(self):
        assert "(no data)" in format_series_table("T", [])

    def test_kv_block(self):
        text = format_kv_block("H", [("key", "val"), ("longer key", "x")])
        assert text.splitlines()[0] == "H"
        assert "key        : val" in text

    def test_shm_pool_block(self):
        from repro.bench.reporting import format_shm_pool

        text = format_shm_pool(
            "Pool",
            {
                "pooled": True,
                "zero_copy": True,
                "leases": 108,
                "segments_created": 63,
                "segments_reused": 45,
                "hit_rate": 0.4167,
                "bytes_created": 2_000_000,
                "bytes_reused": 1_000_000,
                "attaches": 139,
                "attach_reuses": 105,
            },
        )
        assert "pooled, zero-copy" in text
        assert "41.7%" in text
        assert "2.00 MB" in text

    def test_shm_pool_block_empty(self):
        from repro.bench.reporting import format_shm_pool

        assert "thread backend" in format_shm_pool("Pool", {})

    def test_series_accessors(self):
        s, = self.series()
        assert s.seconds() == [2.5, 1.25]
        assert s.speedups() == [1.0, 2.0]
