"""Tests for cube persistence (CubeStore) and the overlap analysis."""

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.overlap import analyze_overlap
from repro.olap import CubeStore, Query, QueryEngine
from tests.conftest import make_relation

CARDS = (10, 6, 4)


@pytest.fixture(scope="module")
def cube():
    rel = make_relation(3000, CARDS, seed=5)
    return build_data_cube(rel, CARDS, MachineSpec(p=3))


class TestCubeStore:
    def test_roundtrip_content(self, cube, tmp_path):
        path = CubeStore.save(cube, str(tmp_path / "cube"))
        back = CubeStore.load(path)
        assert back.views == cube.views
        assert back.cardinalities == cube.cardinalities
        for view in cube.views:
            assert back.view_relation(view).same_content(
                cube.view_relation(view)
            ), view

    def test_roundtrip_preserves_distribution(self, cube, tmp_path):
        path = CubeStore.save(cube, str(tmp_path / "cube"))
        back = CubeStore.load(path)
        for view in cube.views:
            assert np.array_equal(
                back.distribution(view), cube.distribution(view)
            )

    def test_roundtrip_preserves_orders(self, cube, tmp_path):
        path = CubeStore.save(cube, str(tmp_path / "cube"))
        back = CubeStore.load(path)
        for rank in range(3):
            for view in cube.views:
                assert (
                    back.rank_views[rank][view].order
                    == cube.rank_views[rank][view].order
                )

    def test_aggregate_preserved(self, tmp_path):
        rel = make_relation(1000, CARDS, seed=1)
        cube = build_data_cube(
            rel, CARDS, MachineSpec(p=2), CubeConfig(agg="min")
        )
        back = CubeStore.load(CubeStore.save(cube, str(tmp_path / "c")))
        assert back.agg == "min"

    def test_query_from_store(self, cube, tmp_path):
        back = CubeStore.load(CubeStore.save(cube, str(tmp_path / "c")))
        q = Query(group_by=(1,), filters={0: (0, 4)})
        assert QueryEngine(back).answer(q).same_content(
            QueryEngine(cube).answer(q)
        )
        par, secs = QueryEngine(back).answer_parallel(q)
        assert par.same_content(QueryEngine(cube).answer(q))

    def test_exists(self, cube, tmp_path):
        target = str(tmp_path / "c")
        assert not CubeStore.exists(target)
        CubeStore.save(cube, target)
        assert CubeStore.exists(target)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CubeStore.load(str(tmp_path))

    def test_bad_format_rejected(self, cube, tmp_path):
        import json
        import os

        path = CubeStore.save(cube, str(tmp_path / "c"))
        manifest = os.path.join(path, "manifest.json")
        with open(manifest) as fh:
            data = json.load(fh)
        data["format"] = 99
        with open(manifest, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(ValueError, match="format"):
            CubeStore.load(path)


class TestOverlapAnalysis:
    def test_report_consistency(self):
        rel = make_relation(8000, (16, 10, 6, 4), seed=2)
        cube = build_data_cube(rel, (16, 10, 6, 4), MachineSpec(p=8))
        report = analyze_overlap(cube)
        assert report.measured_seconds == pytest.approx(
            cube.metrics.simulated_seconds
        )
        assert 0 <= report.maskable_seconds <= report.merge_comm_seconds + 1e-9
        assert report.overlapped_seconds <= report.measured_seconds
        assert report.speedup_gain() >= 1.0
        assert 0.0 <= report.masked_fraction <= 1.0

    def test_last_partition_cannot_be_masked(self):
        rel = make_relation(4000, (8, 5, 3), seed=2)
        cube = build_data_cube(rel, (8, 5, 3), MachineSpec(p=4))
        report = analyze_overlap(cube)
        last = max(i for i, _, _, _ in report.per_partition)
        _, merge_comm, next_compute, masked = next(
            row for row in report.per_partition if row[0] == last
        )
        assert next_compute == 0.0  # nothing follows the last partition
        assert masked == 0.0

    def test_substantial_masking_in_paper_regime(self):
        """The paper estimates 40-60% of communication is maskable; at a
        communication-heavy configuration the analysis should find a
        substantial fraction too."""
        rel = make_relation(12_000, (16, 12, 8, 6, 4), seed=3)
        cube = build_data_cube(rel, (16, 12, 8, 6, 4), MachineSpec(p=16))
        report = analyze_overlap(cube)
        assert report.masked_fraction > 0.25

    def test_describe(self):
        rel = make_relation(2000, (8, 5, 3), seed=2)
        cube = build_data_cube(rel, (8, 5, 3), MachineSpec(p=2))
        text = analyze_overlap(cube).describe()
        assert "overlap analysis" in text and "maskable" in text


class TestMultiDisk:
    def test_striping_reduces_disk_time(self):
        rel = make_relation(10_000, (16, 10, 6), seed=4)
        one = build_data_cube(
            rel, (16, 10, 6),
            MachineSpec(p=4, disks_per_node=1),
        )
        two = build_data_cube(
            rel, (16, 10, 6),
            MachineSpec(p=4, disks_per_node=2),
        )
        # identical computation; strictly less simulated time with 2 disks
        assert two.metrics.simulated_seconds < one.metrics.simulated_seconds
        assert two.metrics.disk_blocks == one.metrics.disk_blocks

    def test_effective_cost(self):
        spec = MachineSpec(disk_sec_per_block=0.01, disks_per_node=4)
        assert spec.effective_disk_sec_per_block == pytest.approx(0.0025)

    def test_rejects_zero_disks(self):
        with pytest.raises(ValueError):
            MachineSpec(disks_per_node=0)
