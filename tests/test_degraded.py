"""Elastic degraded-mode recovery tests (PR: robustness tentpole).

The degraded-mode contract: under ``RecoveryPolicy(mode="degrade")`` a
*permanent* rank loss does not abort the build — the culprit rank is
blacklisted, its checkpointed state is resharded across the survivors,
and the build finishes at width ``p - k`` with a cube whose *content* is
bit-identical to a clean build at that width (the per-rank row layout
may differ: resharded rows keep their original epoch's partition
boundaries).  Content identity requires an integer-valued measure —
float SUM is not associative, so regrouped partial sums of arbitrary
floats may drift in the last ulp.

Also covered here: the Supervisor's failure detection (dead worker vs
straggler), transient-exhaustion promotion to degrade, the ``min_ranks``
floor, checkpoint-chain damage tolerance (torn payloads, manifest tail
garbage), the barrier-timeout env override, and the post-build audit.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import sys
import time

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec, RecoveryPolicy
from repro.core.audit import audit_cube
from repro.core.checkpoint import RankCheckpoint, ReshardPlan, share_bounds
from repro.core.cube import build_data_cube
from repro.mpi.comm import BARRIER_TIMEOUT_SEC, resolve_barrier_timeout
from repro.mpi.errors import (
    InjectedFault,
    MPIError,
    RankDead,
    RankHung,
    classify_failure,
)
from repro.mpi.faults import FaultPlan
from repro.storage.table import Relation

from .conftest import make_relation

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)

CARDS = (8, 6, 5)
N_ROWS = 1500


@pytest.fixture(scope="module")
def relation():
    """Integer-valued measure: degraded regrouping stays bit-exact."""
    raw = make_relation(N_ROWS, CARDS, seed=17)
    return Relation(raw.dims, np.floor(raw.measure))


def det_spec(backend, p=3, **kw):
    kw.setdefault("compute_scale", 0.0)
    if backend == "process":
        kw.setdefault("heartbeat_interval", 0.05)
    return MachineSpec(p=p, backend=backend, **kw)


def build(relation, backend, p=3, **kw):
    return build_data_cube(
        relation, CARDS, det_spec(backend, p), CubeConfig(), **kw
    )


def content_fingerprint(cube):
    """Digest of the cube's *global* content, independent of how rows
    are distributed across ranks (degraded builds shard differently)."""
    h = hashlib.sha256()
    for view in cube.views:
        rel = cube.view_relation(view)
        if rel.nrows and rel.width:
            order = np.lexsort(
                tuple(rel.dims[:, j] for j in range(rel.width - 1, -1, -1))
            )
        else:
            order = np.arange(rel.nrows)
        h.update(repr(view).encode())
        h.update(np.ascontiguousarray(rel.dims[order]).tobytes())
        h.update(np.ascontiguousarray(rel.measure[order]).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# failure taxonomy
# ---------------------------------------------------------------------------


class TestClassifyFailure:
    def test_permanent(self):
        assert classify_failure(RankDead("x", rank=2)) == ("permanent", 2)
        assert classify_failure(InjectedFault("x", rank=1)) == (
            "permanent",
            1,
        )

    def test_transient(self):
        from repro.mpi.errors import (
            CorruptPayload,
            DiskFull,
            RankFailure,
        )

        assert classify_failure(RankHung("x", rank=0)) == ("transient", 0)
        assert classify_failure(CorruptPayload("x", rank=1)) == (
            "transient",
            1,
        )
        # DiskFull is transient even though the fault injector raises it:
        # a retry rolls a fresh quota.
        assert classify_failure(DiskFull("x", rank=1))[0] == "transient"
        # A bystander aborted by a peer's failure carries no culprit.
        assert classify_failure(RankFailure("x")) == ("transient", None)

    def test_fatal(self):
        from repro.mpi.errors import CollectiveMisuse

        assert classify_failure(KeyboardInterrupt())[0] == "fatal"
        assert classify_failure(SystemExit())[0] == "fatal"
        assert classify_failure(CollectiveMisuse("x"))[0] == "fatal"
        assert classify_failure(ValueError("x"))[0] == "fatal"

    def test_rank_attr_survives_pickling(self):
        import pickle

        err = pickle.loads(pickle.dumps(RankDead("gone", rank=3)))
        assert err.rank == 3
        assert classify_failure(err) == ("permanent", 3)


# ---------------------------------------------------------------------------
# degrade without checkpoints: restart fresh at p - 1
# ---------------------------------------------------------------------------


class TestDegradeFresh:
    def test_thread_crash_degrades_to_p_minus_1(self, relation):
        clean = build(relation, "thread", p=2)
        res = build(
            relation,
            "thread",
            p=3,
            faults=FaultPlan.parse("crash@r1s6"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=0),
            audit=True,
        )
        assert res.metrics.final_width == 2
        assert res.metrics.ranks_lost == [1]
        assert res.metrics.attempts == 2
        assert res.metrics.transient_retries == 0
        assert res.metrics.audit["ok"]
        # Without checkpoints the degraded build restarts from scratch at
        # width 2 — identical inputs to a clean p=2 build, so even the
        # per-rank layout matches.
        assert content_fingerprint(res) == content_fingerprint(clean)

    def test_restart_mode_still_raises_on_permanent_loss(self, relation):
        with pytest.raises(InjectedFault):
            build(
                relation,
                "thread",
                p=3,
                faults=FaultPlan.parse(
                    "crash@r1s6a0;crash@r1s6a1;crash@r1s6a2"
                ),
                recovery=RecoveryPolicy(mode="restart", max_retries=2),
            )

    def test_min_ranks_floor(self, relation):
        with pytest.raises(MPIError, match="min_ranks"):
            build(
                relation,
                "thread",
                p=3,
                faults=FaultPlan.parse("crash@r1s6a0;crash@r1s6a1"),
                recovery=RecoveryPolicy(
                    mode="degrade", max_retries=0, min_ranks=3
                ),
            )

    def test_transient_exhaustion_promotes_to_degrade(self, relation):
        # Rank 1's payloads corrupt on attempts 0 and 1; max_retries=1
        # allows one same-width retry, then the repeat offender is
        # blacklisted.  The promoting failure itself is not counted as a
        # consumed retry.
        res = build(
            relation,
            "thread",
            p=3,
            faults=FaultPlan.parse("corrupt@r1s6a0;corrupt@r1s6a1"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=1),
        )
        assert res.metrics.final_width == 2
        assert res.metrics.ranks_lost == [1]
        assert res.metrics.transient_retries == 1
        assert res.metrics.attempts == 3

    def test_operator_interrupt_is_never_banked(self, relation, monkeypatch):
        """KeyboardInterrupt must re-raise before any recovery machinery
        runs — not retried, not degraded, and the failed cluster's meters
        never read (the fake has none to read)."""
        calls = []

        class FakeCluster:
            def __init__(self, *a, **kw):
                calls.append(1)

            def run(self, *a, **kw):
                raise KeyboardInterrupt()

        monkeypatch.setattr("repro.core.cube.Cluster", FakeCluster)
        with pytest.raises(KeyboardInterrupt):
            build(
                relation,
                "thread",
                p=3,
                recovery=RecoveryPolicy(mode="degrade", max_retries=5),
            )
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# degrade with checkpoints: reshard the dead rank's chain
# ---------------------------------------------------------------------------


class TestDegradeReshard:
    def test_resume_matches_clean_content(self, relation, tmp_path):
        clean = build(relation, "thread", p=2)
        res = build(
            relation,
            "thread",
            p=3,
            faults=FaultPlan.parse("crash@r1s22"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=0),
            checkpoint_dir=str(tmp_path),
            audit=True,
        )
        assert res.metrics.final_width == 2
        assert res.metrics.ranks_lost == [1]
        assert res.metrics.audit["ok"]
        assert content_fingerprint(res) == content_fingerprint(clean)
        # The degrade event opened a fresh epoch directory with the
        # survivors' resharded chains.
        epoch = tmp_path / "epoch01"
        assert epoch.is_dir()
        assert sorted(p.name for p in epoch.iterdir()) == [
            "rank00",
            "rank01",
        ]

    def test_resume_is_cheaper_than_fresh_restart(self, relation, tmp_path):
        kw = dict(
            faults=FaultPlan.parse("crash@r1s22"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=0),
        )
        resumed = build(
            relation, "thread", p=3, checkpoint_dir=str(tmp_path), **kw
        )
        restarted = build(relation, "thread", p=3, **kw)
        assert content_fingerprint(resumed) == content_fingerprint(restarted)
        # The resumed build replays checkpointed iterations from disk
        # instead of redoing their collectives, so it finishes sooner.
        assert (
            resumed.metrics.simulated_seconds
            < restarted.metrics.simulated_seconds
        )

    @requires_fork
    def test_sigkill_degrade_process_backend(self, relation, tmp_path):
        """The CI chaos leg: SIGKILL one rank mid-build under the process
        backend; the supervisor reports it dead, the survivors reshard
        its chain, and the cube matches a clean build at p - 1."""
        clean = build(relation, "thread", p=2)
        res = build(
            relation,
            "process",
            p=3,
            faults=FaultPlan.parse("kill@r1s22"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=0),
            checkpoint_dir=str(tmp_path),
            audit=True,
        )
        assert res.metrics.final_width == 2
        assert res.metrics.ranks_lost == [1]
        assert res.metrics.audit["ok"]
        assert content_fingerprint(res) == content_fingerprint(clean)

    def test_kill_degrades_to_crash_on_thread_backend(self, relation):
        # A thread cannot be SIGKILLed without taking the whole test
        # process down, so the thread backend demotes kill@ to a crash.
        res = build(
            relation,
            "thread",
            p=3,
            faults=FaultPlan.parse("kill@r1s6"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=0),
        )
        assert res.metrics.final_width == 2
        assert res.metrics.ranks_lost == [1]

    def test_double_loss_composes(self, relation, tmp_path):
        """Two permanent losses: two epochs, width 4 -> 3 -> 2."""
        clean = build(relation, "thread", p=2)
        res = build(
            relation,
            "thread",
            p=4,
            # The width-3 epoch resumes from checkpoints, so its
            # collective supersteps renumber from 0 — the second fault
            # lands early in the resumed run.
            faults=FaultPlan.parse("crash@r3s22a0;crash@r1s6a1"),
            recovery=RecoveryPolicy(mode="degrade", max_retries=0),
            checkpoint_dir=str(tmp_path),
            audit=True,
        )
        assert res.metrics.final_width == 2
        assert res.metrics.ranks_lost == [3, 1]
        assert res.metrics.audit["ok"]
        assert content_fingerprint(res) == content_fingerprint(clean)
        assert (tmp_path / "epoch01").is_dir()
        assert (tmp_path / "epoch02").is_dir()


# ---------------------------------------------------------------------------
# reshard plan arithmetic
# ---------------------------------------------------------------------------


class TestReshardPlan:
    def test_after_loss(self):
        plan = ReshardPlan.after_loss(4, [1], "src", "dst")
        assert plan.new_width == 3
        assert plan.survivors == (0, 2, 3)
        assert plan.dead == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReshardPlan.after_loss(3, [7], "src", "dst")
        with pytest.raises(ValueError):
            ReshardPlan(3, 2, (0,), (0, 1), "src", "dst")

    def test_share_bounds_partition(self):
        for nrows in (0, 1, 7, 100):
            for parts in (1, 2, 3, 5):
                spans = [share_bounds(nrows, parts, j) for j in range(parts)]
                # Contiguous, ordered, covers [0, nrows) exactly.
                assert spans[0][0] == 0
                assert spans[-1][1] == nrows
                for (a, b), (c, d) in zip(spans, spans[1:]):
                    assert b == c
                sizes = [b - a for a, b in spans]
                assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# checkpoint-chain damage
# ---------------------------------------------------------------------------


def _seed_chain(root, rank, n=3):
    from repro.core.viewdata import ViewData

    ckpt = RankCheckpoint(str(root), rank)
    for i in range(n):
        vd = ViewData(
            (0,), np.arange(4, dtype=np.int64), np.full(4, float(i))
        )
        ckpt.save(
            i,
            i,
            {
                "views": {(0,): vd},
                "root": vd,
                "root_i": 0,
                "report": None,
                "tree": None,
            },
        )
    return ckpt


class TestChainDamage:
    def test_torn_payload_truncates(self, tmp_path):
        ckpt = _seed_chain(tmp_path, 0)
        path = os.path.join(ckpt.dir, "iter002.ckpt")
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn write
        assert ckpt.last_complete() == 1

    def test_manifest_tail_garbage_keeps_prefix(self, tmp_path):
        ckpt = _seed_chain(tmp_path, 0)
        with open(ckpt._manifest_path(), "a", encoding="utf-8") as fh:
            fh.write('{"ordinal": 3, "file"...TORN')
        assert ckpt.last_complete() == 2

    def test_manifest_half_line_keeps_prefix(self, tmp_path):
        ckpt = _seed_chain(tmp_path, 0)
        raw = open(ckpt._manifest_path(), "r", encoding="utf-8").read()
        lines = raw.splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        with open(ckpt._manifest_path(), "w", encoding="utf-8") as fh:
            fh.write(torn)
        assert ckpt.last_complete() == 1

    def test_crc_mismatch_mid_chain_truncates(self, tmp_path):
        ckpt = _seed_chain(tmp_path, 0)
        path = os.path.join(ckpt.dir, "iter001.ckpt")
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        # Damage at ordinal 1 makes ordinal 2 unusable too.
        assert ckpt.last_complete() == 0

    def test_legacy_v1_manifest_still_readable(self, tmp_path):
        import json

        ckpt = _seed_chain(tmp_path, 0)
        entries = ckpt._read_manifest()
        with open(ckpt._manifest_path(), "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "iterations": entries}, fh)
        assert ckpt.last_complete() == 2

    def test_damaged_chain_resume_end_to_end(self, relation, tmp_path):
        """A damaged tail truncates the resume point; the rebuild replays
        the intact prefix and recomputes the rest, bit-identically."""
        clean = build(relation, "thread", p=2)
        first = build(
            relation, "thread", p=2, checkpoint_dir=str(tmp_path)
        )
        assert content_fingerprint(first) == content_fingerprint(clean)
        # Tear rank 1's newest payload: its last_complete drops, and the
        # allreduce(min) pulls every rank back to the same ordinal.
        ckpt = RankCheckpoint(str(tmp_path), 1)
        last = ckpt.last_complete()
        assert last >= 1
        path = os.path.join(ckpt.dir, f"iter{last:03d}.ckpt")
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        assert ckpt.last_complete() == last - 1
        again = build(
            relation, "thread", p=2, checkpoint_dir=str(tmp_path)
        )
        assert content_fingerprint(again) == content_fingerprint(clean)
        assert ckpt.last_complete() == last  # chain healed by the rebuild


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------


def _exit_quietly(code):
    os._exit(code)


def _sleep_forever():
    time.sleep(60)


@requires_fork
class TestSupervisor:
    def _pair(self, target, *args):
        from multiprocessing import Pipe, get_context

        ctx = get_context("fork")
        parent, child = Pipe()
        proc = ctx.Process(target=target, args=args, daemon=True)
        proc.start()
        child.close()
        return proc, parent

    def test_dead_worker_detected_fast(self):
        from repro.mpi.backends import Supervisor

        proc, conn = self._pair(_exit_quietly, 3)
        sup = Supervisor(
            {0: proc}, heartbeat_interval=0.05, suspect_after=30.0
        )
        start = time.monotonic()
        with pytest.raises(RankDead, match="exit code 3"):
            sup.await_message(conn, 0)
        # Detection is heartbeat-fast, nowhere near suspect_after.
        assert time.monotonic() - start < 5.0
        proc.join()

    def test_sigkilled_worker_named(self):
        import signal

        from repro.mpi.backends import Supervisor

        proc, conn = self._pair(_sleep_forever)
        os.kill(proc.pid, signal.SIGKILL)
        sup = Supervisor(
            {0: proc}, heartbeat_interval=0.05, suspect_after=30.0
        )
        with pytest.raises(RankDead, match="SIGKILL"):
            sup.await_message(conn, 0)
        proc.join()

    def test_straggler_flagged_as_hung(self):
        from repro.mpi.backends import Supervisor

        proc, conn = self._pair(_sleep_forever)
        sup = Supervisor(
            {0: proc}, heartbeat_interval=0.05, suspect_after=0.3
        )
        start = time.monotonic()
        with pytest.raises(RankHung, match="deadline"):
            sup.await_message(conn, 0)
        assert 0.2 < time.monotonic() - start < 5.0
        proc.terminate()
        proc.join()

    def test_live_worker_message_delivered(self):
        from multiprocessing import Pipe, get_context

        from repro.mpi.backends import Supervisor

        ctx = get_context("fork")
        parent, child = Pipe()

        def chatty(conn):
            time.sleep(0.2)
            conn.send("hello")
            time.sleep(5)

        proc = ctx.Process(target=chatty, args=(child,), daemon=True)
        proc.start()
        child.close()
        sup = Supervisor(
            {0: proc}, heartbeat_interval=0.05, suspect_after=10.0
        )
        assert sup.await_message(parent, 0) == "hello"
        proc.terminate()
        proc.join()


# ---------------------------------------------------------------------------
# barrier-timeout resolution
# ---------------------------------------------------------------------------


class TestBarrierTimeout:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BARRIER_TIMEOUT", raising=False)
        assert resolve_barrier_timeout() == BARRIER_TIMEOUT_SEC

    def test_spec_value_wins_over_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BARRIER_TIMEOUT", raising=False)
        assert resolve_barrier_timeout(12.5) == 12.5

    def test_env_outranks_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_BARRIER_TIMEOUT", "7.5")
        assert resolve_barrier_timeout(12.5) == 7.5

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BARRIER_TIMEOUT", "not-a-number")
        assert resolve_barrier_timeout(12.5) == 12.5
        monkeypatch.setenv("REPRO_BARRIER_TIMEOUT", "-3")
        assert resolve_barrier_timeout(12.5) == 12.5

    def test_cluster_resolves_spec(self):
        from repro.mpi.engine import Cluster

        spec = MachineSpec(p=2, barrier_timeout=42.0)
        cluster = Cluster(spec)
        assert cluster.barrier_timeout == 42.0
        assert cluster.suspect_after == 42.0

    def test_suspect_after_overrides(self):
        from repro.mpi.engine import Cluster

        spec = MachineSpec(p=2, barrier_timeout=42.0, suspect_after=5.0)
        assert Cluster(spec).suspect_after == 5.0


# ---------------------------------------------------------------------------
# post-build audit
# ---------------------------------------------------------------------------


class TestAudit:
    def test_clean_build_passes(self, relation):
        cube = build(relation, "thread", p=2)
        report = audit_cube(cube, relation=relation)
        assert report.ok
        assert {c.name for c in report.checks} == {
            "view-totals",
            "row-monotonicity",
            "key-uniqueness",
            "piece-order",
        }
        assert "OK" in report.summary()

    def test_tampered_totals_flagged(self, relation):
        cube = build(relation, "thread", p=2)
        view = cube.views[0]
        cube.rank_views[0][view].measure[0] += 1000.0
        report = audit_cube(cube, relation=relation)
        assert not report.ok
        assert any("view-totals" in issue for issue in report.issues)

    def test_duplicate_keys_flagged(self, relation):
        cube = build(relation, "thread", p=2)
        # Give rank 1 a copy of rank 0's piece: every key duplicated.
        dense = max(cube.views, key=lambda v: cube.view_rows(v))
        cube.rank_views[1][dense] = cube.rank_views[0][dense]
        report = audit_cube(cube)
        assert not report.ok
        assert any("key-uniqueness" in issue for issue in report.issues)

    def test_unsorted_piece_flagged(self, relation):
        cube = build(relation, "thread", p=2)
        dense = max(cube.views, key=lambda v: cube.view_rows(v))
        piece = cube.rank_views[0][dense]
        if piece.nrows >= 2:
            piece.keys[:2] = piece.keys[:2][::-1]
        report = audit_cube(cube)
        assert not report.ok

    def test_count_cube_totals_equal_row_count(self, relation):
        cube = build_data_cube(
            relation,
            CARDS,
            det_spec("thread", 2),
            CubeConfig(agg="count"),
            audit=True,
        )
        assert cube.metrics.audit["ok"]

    def test_audit_attached_to_metrics(self, relation):
        cube = build(relation, "thread", p=2, audit=True)
        assert cube.metrics.audit["ok"] is True
        assert "audit: OK" in cube.metrics.summary()
