"""Tests for repro.storage.external_sort."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.disk import LocalDisk
from repro.storage.external_sort import (
    external_sort,
    merge_fanin,
    sort_cost_blocks,
)


def run_sort(keys, budget, block=8):
    disk = LocalDisk(block_size=block)
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.arange(len(keys), dtype=np.float64)
    sk, sv = external_sort(keys, vals, disk, budget)
    return sk, sv, disk


class TestCorrectness:
    def test_in_memory_path(self):
        sk, sv, disk = run_sort([3, 1, 2], budget=10)
        assert sk.tolist() == [1, 2, 3]
        assert sv.tolist() == [1.0, 2.0, 0.0]
        assert disk.stats.blocks_total == 0  # fits memory: no disk traffic

    def test_external_path_sorted(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1000, 500)
        sk, sv, disk = run_sort(keys, budget=32)
        assert np.all(np.diff(sk) >= 0)
        assert disk.stats.blocks_total > 0

    def test_payload_follows_key(self):
        keys = np.array([5, 1, 5, 0], dtype=np.int64)
        sk, sv, _ = run_sort(keys, budget=2)
        pairs = sorted(zip(keys.tolist(), [0.0, 1.0, 2.0, 3.0]))
        assert list(zip(sk.tolist(), sv.tolist())) == pairs

    def test_stability_in_memory(self):
        keys = np.array([1, 1, 1], dtype=np.int64)
        sk, sv, _ = run_sort(keys, budget=10)
        assert sv.tolist() == [0.0, 1.0, 2.0]

    def test_empty(self):
        sk, sv, disk = run_sort([], budget=8)
        assert sk.size == 0
        assert disk.stats.blocks_total == 0

    def test_rejects_mismatched(self):
        disk = LocalDisk(block_size=4)
        with pytest.raises(ValueError):
            external_sort(
                np.zeros(3, dtype=np.int64), np.zeros(2), disk, 10
            )

    @given(st.lists(st.integers(0, 10_000), max_size=300))
    def test_multiset_preserved(self, raw):
        keys = np.array(raw, dtype=np.int64)
        sk, sv, _ = run_sort(keys, budget=16, block=4)
        assert np.all(np.diff(sk) >= 0) if sk.size else True
        assert sorted(sk.tolist()) == sorted(raw)
        assert sorted(sv.tolist()) == sorted(range(len(raw)))


class TestCostModel:
    def test_fanin(self):
        assert merge_fanin(64, 8) == 7
        assert merge_fanin(16, 8) == 2  # floor at 2
        assert merge_fanin(8, 8) == 2

    def test_in_memory_zero_cost(self):
        assert sort_cost_blocks(100, 1000, 8) == 0

    def test_measured_matches_model_aligned(self):
        # n, budget and block all powers of two: exact match expected.
        n, budget, block = 1024, 64, 8
        keys = np.random.default_rng(1).integers(0, 10**6, n)
        _, _, disk = run_sort(keys, budget=budget, block=block)
        assert disk.stats.blocks_total == sort_cost_blocks(n, budget, block)

    def test_measured_close_to_model_unaligned(self):
        n, budget, block = 1000, 60, 8
        keys = np.random.default_rng(2).integers(0, 10**6, n)
        _, _, disk = run_sort(keys, budget=budget, block=block)
        model = sort_cost_blocks(n, budget, block)
        # per-run rounding can add at most one block per run per pass
        assert model <= disk.stats.blocks_total <= model + 4 * (n // budget + 1)

    def test_logarithmic_passes(self):
        # 64 runs with fan-in 7 -> 3 passes (64 -> 10 -> 2 -> 1)
        n, budget, block = 64 * 64, 64, 8
        blocks = -(-n // block)
        assert sort_cost_blocks(n, budget, block) == blocks + 2 * blocks * 3 + blocks

    def test_work_meter_charged(self):
        disk = LocalDisk(block_size=8)
        keys = np.arange(100, dtype=np.int64)
        external_sort(keys, keys.astype(float), disk, 1000)
        assert disk.work.rows_sorted == 100
        assert disk.work.seconds > 0
