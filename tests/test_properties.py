"""Cross-module property-based tests (hypothesis).

These push randomised inputs through whole subsystems and check the
invariants DESIGN.md section 6 promises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import reference_cube
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.pipesort import build_schedule_tree
from repro.core.partial import build_partial_schedule_tree
from repro.core.views import all_views
from repro.data.generator import DatasetSpec, generate_dataset
from repro.olap import Query, QueryEngine


@st.composite
def small_dataset(draw):
    d = draw(st.integers(1, 4))
    cards = sorted(
        (draw(st.integers(2, 12)) for _ in range(d)), reverse=True
    )
    n = draw(st.integers(0, 300))
    alphas = tuple(draw(st.floats(0, 2)) for _ in range(d))
    seed = draw(st.integers(0, 99))
    spec = DatasetSpec(n, tuple(cards), alphas, seed=seed)
    return generate_dataset(spec), tuple(cards)


class TestCubeInvariants:
    @settings(max_examples=12)
    @given(small_dataset(), st.integers(1, 5))
    def test_cube_equals_oracle(self, data_cards, p):
        data, cards = data_cards
        cube = build_data_cube(data, cards, MachineSpec(p=p))
        ref = reference_cube(data, cards)
        for view, want in ref.items():
            assert cube.view_relation(view).same_content(want)

    @settings(max_examples=12)
    @given(small_dataset(), st.integers(2, 4))
    def test_keys_globally_unique_per_view(self, data_cards, p):
        data, cards = data_cards
        cube = build_data_cube(data, cards, MachineSpec(p=p))
        for view in cube.views:
            keys = np.concatenate(
                [rv[view].keys for rv in cube.rank_views]
            )
            assert np.unique(keys).size == keys.size

    @settings(max_examples=12)
    @given(small_dataset(), st.integers(1, 4))
    def test_grand_total_invariant(self, data_cards, p):
        """Every view's measure sums to the raw grand total (sum agg)."""
        data, cards = data_cards
        cube = build_data_cube(data, cards, MachineSpec(p=p))
        grand = data.measure.sum()
        for view in cube.views:
            total = sum(
                rv[view].measure.sum() for rv in cube.rank_views
            )
            assert total == pytest.approx(grand, rel=1e-9, abs=1e-6)

    @settings(max_examples=10)
    @given(small_dataset(), st.sampled_from(["count", "min", "max"]))
    def test_other_aggregates_match_oracle(self, data_cards, agg):
        data, cards = data_cards
        cube = build_data_cube(
            data, cards, MachineSpec(p=3), CubeConfig(agg=agg)
        )
        ref = reference_cube(data, cards, agg=agg)
        for view, want in ref.items():
            assert cube.view_relation(view).same_content(want)

    @settings(max_examples=10)
    @given(small_dataset(), st.data())
    def test_rollup_consistency(self, data_cards, data_strategy):
        """Summing a child view over its extra dims equals the parent —
        for SUM cubes, any pair of nested views must agree."""
        data, cards = data_cards
        d = len(cards)
        cube = build_data_cube(data, cards, MachineSpec(p=2))
        views = all_views(d)
        child = data_strategy.draw(st.sampled_from(views))
        parents = [v for v in views if set(child) < set(v)]
        if not parents:
            return
        parent = data_strategy.draw(st.sampled_from(parents))
        child_rel = cube.view_relation(child)
        parent_rel = cube.view_relation(parent)
        assert child_rel.measure.sum() == pytest.approx(
            parent_rel.measure.sum(), rel=1e-9, abs=1e-6
        )


class TestQueryProperties:
    @settings(max_examples=10)
    @given(small_dataset(), st.data())
    def test_any_query_equals_raw_aggregation(self, data_cards, ds):
        data, cards = data_cards
        d = len(cards)
        cube = build_data_cube(data, cards, MachineSpec(p=2))
        engine = QueryEngine(cube)
        group_by = ds.draw(st.sampled_from(all_views(d)))
        filter_dim = ds.draw(st.integers(0, d - 1))
        lo = ds.draw(st.integers(0, cards[filter_dim] - 1))
        hi = ds.draw(st.integers(lo, cards[filter_dim] - 1))
        query = Query(group_by=group_by, filters={filter_dim: (lo, hi)})
        got = engine.answer(query)
        mask = (data.dims[:, filter_dim] >= lo) & (
            data.dims[:, filter_dim] <= hi
        )
        from repro.baselines.reference import reference_view
        from repro.storage.table import Relation

        want = reference_view(
            Relation(data.dims[mask], data.measure[mask]), cards, group_by
        )
        assert got.same_content(want)


class TestScheduleTreeProperties:
    @settings(max_examples=15)
    @given(st.integers(1, 6), st.integers(0, 999))
    def test_full_tree_valid_under_random_estimates(self, d, seed):
        rng = np.random.default_rng(seed)
        views = all_views(d)
        est = {v: float(rng.integers(1, 10**6)) for v in views}
        tree = build_schedule_tree(views, tuple(range(d)), est)
        tree.validate()
        assert set(tree.views()) == set(views)

    @settings(max_examples=15)
    @given(st.integers(2, 6), st.data())
    def test_partial_tree_valid_for_random_selections(self, d, ds):
        views = all_views(d)
        selected = ds.draw(
            st.lists(st.sampled_from(views), min_size=1, max_size=10)
        )
        rng = np.random.default_rng(ds.draw(st.integers(0, 99)))
        est = {v: float(rng.integers(1, 10**4)) for v in views}
        root = tuple(range(d))
        tree = build_partial_schedule_tree(
            [v for v in selected if v != root], root, est
        )
        tree.validate()
        for v in selected:
            assert v == root or v in tree
