"""Tests for repro.storage.scan: sorted-run aggregation and merging."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.scan import aggregate_sorted_keys, merge_sorted


class TestAggregateSortedKeys:
    def test_sum(self):
        keys = np.array([1, 1, 2, 3, 3, 3], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 1.0, 1.0, 1.0])
        k, v = aggregate_sorted_keys(keys, vals, "sum")
        assert k.tolist() == [1, 2, 3]
        assert v.tolist() == [3.0, 3.0, 3.0]

    def test_count(self):
        keys = np.array([5, 5, 5, 9], dtype=np.int64)
        vals = np.array([1.0, 7.0, 3.0, 2.0])
        k, v = aggregate_sorted_keys(keys, vals, "count")
        assert k.tolist() == [5, 9]
        assert v.tolist() == [3.0, 1.0]

    def test_min_max(self):
        keys = np.array([1, 1, 2], dtype=np.int64)
        vals = np.array([3.0, -1.0, 5.0])
        _, vmin = aggregate_sorted_keys(keys, vals, "min")
        _, vmax = aggregate_sorted_keys(keys, vals, "max")
        assert vmin.tolist() == [-1.0, 5.0]
        assert vmax.tolist() == [3.0, 5.0]

    def test_empty(self):
        k, v = aggregate_sorted_keys(
            np.empty(0, dtype=np.int64), np.empty(0), "sum"
        )
        assert k.size == 0 and v.size == 0

    def test_all_distinct_unchanged(self):
        keys = np.arange(10, dtype=np.int64)
        vals = np.arange(10, dtype=np.float64)
        k, v = aggregate_sorted_keys(keys, vals, "sum")
        assert np.array_equal(k, keys)
        assert np.array_equal(v, vals)

    def test_single_group(self):
        keys = np.zeros(5, dtype=np.int64)
        vals = np.ones(5)
        k, v = aggregate_sorted_keys(keys, vals, "sum")
        assert k.tolist() == [0]
        assert v.tolist() == [5.0]

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_sorted_keys(np.zeros(3, dtype=np.int64), np.zeros(2))

    def test_rejects_unknown_agg(self):
        with pytest.raises(ValueError, match="unsupported"):
            aggregate_sorted_keys(
                np.zeros(1, dtype=np.int64), np.zeros(1), "median"
            )

    @given(st.lists(st.integers(0, 10), max_size=60))
    def test_sum_preserved_property(self, raw):
        keys = np.sort(np.array(raw, dtype=np.int64))
        vals = np.ones(len(raw))
        k, v = aggregate_sorted_keys(keys, vals, "sum")
        assert v.sum() == pytest.approx(len(raw))
        assert np.all(np.diff(k) > 0)  # strictly increasing output keys


class TestMergeSorted:
    def test_interleave(self):
        ka = np.array([1, 3, 5], dtype=np.int64)
        kb = np.array([2, 4, 6], dtype=np.int64)
        k, v = merge_sorted(ka, ka * 10.0, kb, kb * 10.0)
        assert k.tolist() == [1, 2, 3, 4, 5, 6]
        assert v.tolist() == [10, 20, 30, 40, 50, 60]

    def test_stability_a_first_on_ties(self):
        ka = np.array([5], dtype=np.int64)
        kb = np.array([5], dtype=np.int64)
        k, v = merge_sorted(ka, np.array([1.0]), kb, np.array([2.0]))
        assert v.tolist() == [1.0, 2.0]

    def test_empty_sides(self):
        ka = np.array([1], dtype=np.int64)
        va = np.array([1.0])
        empty_k = np.empty(0, dtype=np.int64)
        empty_v = np.empty(0)
        k, v = merge_sorted(ka, va, empty_k, empty_v)
        assert k.tolist() == [1]
        k, v = merge_sorted(empty_k, empty_v, ka, va)
        assert k.tolist() == [1]

    @given(
        st.lists(st.integers(-50, 50), max_size=50),
        st.lists(st.integers(-50, 50), max_size=50),
    )
    def test_merge_equals_sorted_concat(self, a, b):
        ka = np.sort(np.array(a, dtype=np.int64))
        kb = np.sort(np.array(b, dtype=np.int64))
        va = np.arange(len(a), dtype=np.float64)
        vb = np.arange(len(b), dtype=np.float64) + 1000
        k, v = merge_sorted(ka, va, kb, vb)
        assert np.array_equal(k, np.sort(np.concatenate([ka, kb])))
        # multiset of (key, value) pairs preserved
        got = sorted(zip(k.tolist(), v.tolist()))
        want = sorted(
            zip(np.concatenate([ka, kb]).tolist(),
                np.concatenate([va, vb]).tolist())
        )
        assert got == want
