"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import _parse_filter, _parse_view, main


class TestParsers:
    def test_parse_view(self):
        assert _parse_view("0,2,5") == (0, 2, 5)
        assert _parse_view("") == ()
        assert _parse_view("all") == ()
        assert _parse_view("ALL") == ()
        assert _parse_view("3") == (3,)

    def test_parse_filter_range(self):
        assert _parse_filter("2=0:5") == (2, (0, 5))

    def test_parse_filter_scalar(self):
        assert _parse_filter("1=7") == (1, (7, 7))

    def test_parse_filter_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_filter("garbage")


class TestCommands:
    @pytest.fixture(scope="class")
    def cube_dir(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "cube")
        rc = main(
            [
                "build", "--rows", "1500", "--p", "3", "--mix", "C",
                "--out", path, "--seed", "5",
            ]
        )
        assert rc == 0
        return path

    def test_build_without_store(self, capsys):
        assert main(["build", "--rows", "800", "--p", "2", "--mix", "C"]) == 0
        out = capsys.readouterr().out
        assert "256 views" in out

    def test_info(self, cube_dir, capsys):
        assert main(["info", cube_dir]) == 0
        out = capsys.readouterr().out
        assert "256 views" in out and "p=3" in out

    def test_info_views(self, cube_dir, capsys):
        assert main(["info", cube_dir, "--views"]) == 0
        out = capsys.readouterr().out
        assert "ALL" in out

    def test_query(self, cube_dir, capsys):
        assert main(["query", cube_dir, "--group-by", "0,1"]) == 0
        out = capsys.readouterr().out
        assert "GROUP BY AB" in out

    def test_query_filtered_parallel(self, cube_dir, capsys):
        rc = main(
            [
                "query", cube_dir, "--group-by", "2",
                "--filter", "0=0:3", "--parallel", "--limit", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel latency" in out

    def test_query_all(self, cube_dir, capsys):
        assert main(["query", cube_dir, "--group-by", "all"]) == 0
        out = capsys.readouterr().out
        assert "GROUP BY ALL" in out

    def test_demo(self, capsys):
        assert main(["demo", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out

    def test_build_from_csv(self, tmp_path, capsys):
        facts = tmp_path / "facts.csv"
        facts.write_text(
            "region,store,rev\neast,s1,10\nwest,s2,5\neast,s2,2\n"
        )
        out = str(tmp_path / "cube")
        rc = main(
            ["build", "--from-csv", str(facts), "--dimensions",
             "region,store", "--measure", "rev", "--p", "2", "--out", out]
        )
        assert rc == 0
        assert main(["query", out, "--group-by", "all"]) == 0
        text = capsys.readouterr().out
        assert "17" in text  # 10 + 5 + 2

    def test_build_from_csv_requires_columns(self, tmp_path):
        facts = tmp_path / "facts.csv"
        facts.write_text("a,m\n1,2\n")
        assert main(["build", "--from-csv", str(facts)]) == 2

    def test_count_aggregate_build(self, tmp_path, capsys):
        path = str(tmp_path / "cnt")
        assert main(
            ["build", "--rows", "500", "--p", "2", "--mix", "C",
             "--agg", "count", "--out", path]
        ) == 0
        assert main(["query", path, "--group-by", "all"]) == 0
        out = capsys.readouterr().out
        # the grand total of a COUNT cube is the row count
        assert "500" in out
