"""Tests for attribute-value reordering (repro.storage.reorder) and the
query-side translation layer (ReorderedQueryEngine)."""

import numpy as np
import pytest

from repro.baselines.reference import reference_view
from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.data.generator import DatasetSpec, generate_dataset
from repro.olap import CubeStore, Query, QueryEngine, ReorderedQueryEngine
from repro.storage.reorder import ValueReorder, reorder_relation
from repro.storage.table import Relation

CARDS = (12, 8, 5, 3)


@pytest.fixture(scope="module")
def dataset():
    """Skewed, label-scrambled data: reordering has work to do."""
    return generate_dataset(
        DatasetSpec(
            n=4000,
            cardinalities=CARDS,
            alphas=(1.2, 0.9, 0.5, 0.2),
            seed=17,
            scramble=True,
        )
    )


@pytest.fixture(scope="module")
def reordered(dataset):
    return reorder_relation(dataset, CARDS)


@pytest.fixture(scope="module")
def cube(reordered):
    rel, _ = reordered
    return build_data_cube(rel, CARDS, MachineSpec(p=2))


def oracle(dataset, group_by, filters=None, agg="sum"):
    """Ground truth in original value space."""
    mask = np.ones(dataset.nrows, dtype=bool)
    for dim, bounds in (filters or {}).items():
        lo, hi = bounds if isinstance(bounds, tuple) else (bounds, bounds)
        mask &= (dataset.dims[:, dim] >= lo) & (dataset.dims[:, dim] <= hi)
    filtered = Relation(dataset.dims[mask], dataset.measure[mask])
    return reference_view(filtered, CARDS, group_by, agg)


# ---------------------------------------------------------------------------
# ValueReorder
# ---------------------------------------------------------------------------


class TestValueReorder:
    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            ValueReorder([np.array([0, 0, 1])])
        with pytest.raises(ValueError, match="permutation"):
            ValueReorder([np.array([1, 2, 3])])
        with pytest.raises(ValueError, match="permutation"):
            ValueReorder([np.empty(0, dtype=np.int64)])

    def test_identity(self):
        vr = ValueReorder.identity((4, 3, 1))
        assert vr.is_identity
        assert vr.width == 3
        assert vr.cardinalities == (4, 3, 1)
        dims = np.array([[3, 2, 0], [0, 0, 0]], dtype=np.int64)
        assert np.array_equal(vr.apply_dims(dims), dims)

    def test_inverse_recorded(self):
        vr = ValueReorder([np.array([2, 0, 1, 3])])
        assert np.array_equal(vr.inverse[0], np.array([1, 2, 0, 3]))

    def test_from_sample_frequency_ranking(self):
        # value 2 seen 3x, value 0 seen 1x, values 1 and 3 unseen.
        sample = np.array([[2], [2], [0], [2]], dtype=np.int64)
        vr = ValueReorder.from_sample(sample, (4,))
        perm = vr.perms[0]
        assert perm[2] == 0          # most frequent -> smallest code
        assert perm[0] == 1
        # unseen values keep ascending original order after seen ones
        assert perm[1] == 2 and perm[3] == 3

    def test_from_sample_tie_break_deterministic(self):
        # all values equally frequent -> identity (ties by orig code)
        sample = np.repeat(np.arange(5), 3).reshape(-1, 1)
        vr = ValueReorder.from_sample(sample, (5,))
        assert vr.is_identity

    def test_from_sample_empty_sample(self):
        vr = ValueReorder.from_sample(
            np.empty((0, 2), dtype=np.int64), (3, 2)
        )
        assert vr.is_identity

    def test_cardinality_one_dim(self):
        vr = ValueReorder.from_sample(
            np.zeros((10, 1), dtype=np.int64), (1,)
        )
        assert vr.is_identity and vr.cardinalities == (1,)

    def test_apply_invert_roundtrip(self, dataset):
        vr = ValueReorder.from_relation(dataset, CARDS)
        out = vr.apply(dataset)
        assert np.array_equal(
            vr.invert_dims(out.dims), dataset.dims
        )
        assert out.measure is dataset.measure or np.array_equal(
            out.measure, dataset.measure
        )

    def test_invert_dims_projection(self):
        vr = ValueReorder(
            [np.array([1, 0]), np.array([2, 0, 1]), np.array([0])]
        )
        # columns are (dim 2, dim 1) of some view projection
        reordered = np.array([[0, 2], [0, 0]], dtype=np.int64)
        back = vr.invert_dims(reordered, dims_of=(2, 1))
        # dim 1's perm [2, 0, 1] has inverse [1, 2, 0]: 2 -> 0, 0 -> 1
        assert np.array_equal(
            back, np.array([[0, 0], [0, 1]], dtype=np.int64)
        )

    def test_map_range_point_and_full(self):
        vr = ValueReorder([np.array([1, 3, 0, 2])])
        assert vr.map_range(0, 1, 1).tolist() == [3]
        assert vr.map_range(0, 0, 3).tolist() == [0, 1, 2, 3]

    def test_map_range_non_contiguous(self):
        vr = ValueReorder([np.array([1, 3, 0, 2])])
        assert vr.map_range(0, 0, 1).tolist() == [1, 3]

    def test_map_range_clamps(self):
        vr = ValueReorder([np.array([1, 3, 0, 2])])
        assert vr.map_range(0, 2, 99).tolist() == [0, 2]
        assert vr.map_range(0, 5, 9).size == 0
        assert vr.map_range(0, 3, 1).size == 0

    def test_manifest_roundtrip(self):
        vr = ValueReorder([np.array([2, 0, 1]), np.array([0, 1])])
        back = ValueReorder.from_manifest(vr.to_manifest())
        for a, b in zip(vr.perms, back.perms):
            assert np.array_equal(a, b)
        for a, b in zip(vr.inverse, back.inverse):
            assert np.array_equal(a, b)

    def test_shape_validation(self):
        vr = ValueReorder.identity((4, 3))
        with pytest.raises(ValueError, match="expected"):
            vr.apply_dims(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="expected"):
            vr.invert_dims(np.zeros((2, 1), dtype=np.int64))


class TestReorderRelation:
    def test_recovers_frequency_order(self, dataset, reordered):
        """After reordering, code 0 is the most frequent value in every
        skewed dimension — scrambled labels are undone."""
        rel, vr = reordered
        assert not vr.is_identity
        for col in range(2):  # the strongly skewed dims
            counts = np.bincount(rel.dims[:, col], minlength=CARDS[col])
            assert counts.argmax() == 0
            assert np.all(np.diff(counts) <= 0)  # monotone non-increasing

    def test_content_preserved(self, dataset, reordered):
        rel, vr = reordered
        assert rel.nrows == dataset.nrows
        assert np.array_equal(vr.invert_dims(rel.dims), dataset.dims)
        assert np.array_equal(rel.measure, dataset.measure)

    def test_sampled_reorder_close_to_exact(self, dataset):
        """The stride sample ranks the heavy hitters like the full data."""
        sampled = ValueReorder.from_relation(dataset, CARDS, sample_rows=512)
        exact = ValueReorder.from_sample(dataset.dims, CARDS)
        for col in range(len(CARDS)):
            # the single most frequent value agrees
            assert (
                sampled.inverse[col][0] == exact.inverse[col][0]
            )


# ---------------------------------------------------------------------------
# store round-trip + ReorderedQueryEngine
# ---------------------------------------------------------------------------

QUERIES = [
    Query(group_by=(0,)),
    Query(group_by=(0, 1), filters={2: (1, 3)}),
    Query(group_by=(1,), filters={0: (2, 2), 3: (0, 1)}),
    Query(group_by=(2, 3), filters={0: (5, 5)}),
    Query(group_by=(), filters={1: (0, 4)}),
    Query(group_by=(1, 3), filters={1: (2, 6), 2: (0, 2)}),
    Query(group_by=(0, 2), filters={0: (1, 6)}, having=(">=", 200.0)),
]


class TestReorderedStore:
    @pytest.fixture(scope="class")
    def handles(self, cube, reordered, tmp_path_factory):
        _, vr = reordered
        root = tmp_path_factory.mktemp("reorder")
        p2 = CubeStore.save(cube, str(root / "f2"), format=2, reorder=vr)
        p3 = CubeStore.save(cube, str(root / "f3"), format=3, reorder=vr)
        return CubeStore.open(p2), CubeStore.open(p3)

    def test_manifest_records_permutations(self, handles, reordered):
        _, vr = reordered
        for handle in handles:
            assert handle.reorder is not None
            for a, b in zip(handle.reorder.perms, vr.perms):
                assert np.array_equal(a, b)
            for a, b in zip(handle.reorder.inverse, vr.inverse):
                assert np.array_equal(a, b)

    def test_engine_is_wrapped(self, handles):
        for handle in handles:
            engine = handle.query_engine()
            assert isinstance(engine, ReorderedQueryEngine)

    def test_identity_reorder_not_persisted(self, cube, tmp_path):
        vr = ValueReorder.identity(CARDS)
        path = CubeStore.save(
            cube, str(tmp_path / "ident"), format=2, reorder=vr
        )
        handle = CubeStore.open(path)
        assert handle.reorder is None
        assert isinstance(handle.query_engine(), QueryEngine)

    def test_answers_match_oracle(self, handles, dataset):
        """Wrapper answers are in original values and bit-identical
        across formats 2 and 3."""
        h2, h3 = handles
        e2, e3 = h2.query_engine(), h3.query_engine()
        for query in QUERIES:
            a2, a3 = e2.answer(query), e3.answer(query)
            assert np.array_equal(a2.dims, a3.dims), query
            assert np.array_equal(a2.measure, a3.measure), query
            if query.having is None:
                want = oracle(dataset, query.group_by, query.filters)
                assert np.array_equal(a2.dims, want.dims), query
                assert np.allclose(a2.measure, want.measure), query

    def test_having_after_reaggregation(self, handles, dataset):
        h2, _ = handles
        query = QUERIES[-1]
        got = h2.query_engine().answer(query)
        op, threshold = query.having
        want = oracle(dataset, query.group_by, query.filters)
        keep = want.measure >= threshold
        assert np.array_equal(got.dims, want.dims[keep])
        assert np.allclose(got.measure, want.measure[keep])

    def test_scan_and_index_agree(self, handles):
        h2, h3 = handles
        for handle in (h2, h3):
            fast = handle.query_engine(index=True)
            slow = handle.query_engine(index=False)
            for query in QUERIES:
                a, b = fast.answer(query), slow.answer(query)
                assert np.array_equal(a.dims, b.dims), query
                assert np.array_equal(a.measure, b.measure), query

    def test_answer_parallel_matches(self, handles):
        h2, _ = handles
        engine = h2.query_engine()
        for query in QUERIES:
            serial = engine.answer(query)
            dist, seconds = engine.answer_parallel(query)
            assert np.array_equal(serial.dims, dist.dims), query
            assert np.allclose(serial.measure, dist.measure), query
            assert seconds >= 0.0

    def test_clamped_filter_returns_empty(self, handles):
        h2, _ = handles
        got = h2.query_engine().answer(
            Query(group_by=(0,), filters={1: (100, 200)})
        )
        assert got.nrows == 0 and got.width == 1

    def test_explain_delegates(self, handles):
        h2, _ = handles
        engine = h2.query_engine()
        plan = engine.explain(Query(group_by=(0,), filters={0: (2, 2)}))
        assert plan.access_path in ("index", "dense", "scan")
