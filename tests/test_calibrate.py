"""Tests for the cost-model calibration utility."""

import pytest

from repro.bench.calibrate import (
    HostConstants,
    calibrated_spec,
    measure_host_constants,
)
from repro.config import MachineSpec


class TestMeasure:
    def test_positive_constants(self):
        host = measure_host_constants(rows=50_000, repeats=1)
        assert host.sort_sec_per_row_level > 0
        assert host.scan_sec_per_row > 0
        assert host.rows_measured == 50_000

    def test_describe(self):
        host = measure_host_constants(rows=20_000, repeats=1)
        assert "ns/row" in host.describe()

    def test_host_faster_than_2003(self):
        """A modern host must beat a 1.8 GHz Xeon's per-row constants."""
        host = measure_host_constants(rows=100_000, repeats=2)
        spec = MachineSpec()
        assert host.slowdown_vs(spec) > 1.0


class TestCalibratedSpec:
    def test_named_profile(self):
        spec = calibrated_spec(MachineSpec(p=8), "xeon2003")
        assert spec.sort_sec_per_row_level == pytest.approx(2.0e-7)
        assert spec.p == 8  # other fields preserved

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown target"):
            calibrated_spec(MachineSpec(), "cray1")

    def test_numeric_factor(self):
        host = HostConstants(1e-8, 5e-9, 1000)
        spec = calibrated_spec(MachineSpec(), 10.0, host=host)
        assert spec.sort_sec_per_row_level == pytest.approx(1e-7)
        assert spec.scan_sec_per_row == pytest.approx(5e-8)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            calibrated_spec(MachineSpec(), 0.0, host=HostConstants(1, 1, 1))

    def test_slowdown_roundtrip(self):
        host = HostConstants(1e-8, 1e-8, 1000)
        spec = calibrated_spec(MachineSpec(), 7.0, host=host)
        assert host.slowdown_vs(spec) == pytest.approx(7.0)
