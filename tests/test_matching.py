"""Cross-validation of the production matcher against the classic
replicated-parent Pipesort matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import Lattice
from repro.core.matching import level_cost, match_level_replicated
from repro.core.pipesort import build_schedule_tree, scan_cost, sort_cost
from repro.core.views import all_views


def tree_level_cost(tree, children, estimates):
    """Cost the production tree assigns to one level's children."""
    total = 0.0
    for child in children:
        node = tree.nodes[child]
        size = max(estimates.get(node.parent, 1.0), 1.0)
        total += scan_cost(size) if node.mode == "scan" else sort_cost(size)
    return total


class TestReplicatedMatching:
    def test_prefers_scan_from_each_parent_once(self):
        parents = [(0, 1), (0, 2)]
        children = [(0,), (1,), (2,)]
        est = {(0, 1): 100.0, (0, 2): 100.0}
        assignment = match_level_replicated(children, parents, est)
        scans = [(c, p) for c, p, m in assignment if m == "scan"]
        by_parent = {}
        for c, p in scans:
            by_parent.setdefault(p, []).append(c)
        for p, cs in by_parent.items():
            assert len(cs) == 1  # one scan per parent

    def test_all_children_assigned(self):
        lat = Lattice.full(4)
        parents = lat.level(3)
        children = lat.level(2)
        est = {u: 50.0 for u in parents}
        assignment = match_level_replicated(children, parents, est)
        assert sorted(c for c, _, _ in assignment) == sorted(children)

    def test_infeasible_child_raises(self):
        with pytest.raises(ValueError):
            match_level_replicated([(3,)], [(0, 1)], {})

    def test_scan_restriction_respected(self):
        parents = [(0, 1)]
        children = [(0,), (1,)]
        est = {(0, 1): 100.0}
        assignment = match_level_replicated(
            children, parents, est, scan_allowed={(0, 1): {(0,)}}
        )
        modes = dict((c, m) for c, _, m in assignment)
        assert modes[(0,)] == "scan"
        assert modes[(1,)] == "sort"

    @settings(max_examples=20)
    @given(st.integers(2, 5), st.integers(0, 999))
    def test_production_matcher_is_optimal_per_level(self, d, seed):
        """The savings formulation must achieve the replicated matching's
        optimal cost for an (unconstrained) level pair."""
        from repro.core.pipesort import ScheduleTree, _match_level

        rng = np.random.default_rng(seed)
        views = all_views(d)
        est = {v: float(rng.integers(1, 10_000)) for v in views}
        lat = Lattice.full(d)
        for k in range(d - 1, -1, -1):
            children = lat.level(k)
            parents = lat.level(k + 1)
            # drive the production matcher with no pinned chain: stub tree
            # whose "root" set covers all parents so add() accepts them
            stub = ScheduleTree(tuple(range(d)), tuple(range(d)))
            for u in parents:
                if u != stub.root:
                    stub.nodes[u] = type(stub.nodes[stub.root])(
                        u, "sort", None, u
                    )
            _match_level(stub, children, parents, est, pinned={})
            got = tree_level_cost(stub, children, est)
            optimal = level_cost(
                match_level_replicated(children, parents, est), est
            )
            assert got == pytest.approx(optimal, rel=1e-9), (d, k)

    @settings(max_examples=10)
    @given(st.integers(2, 5), st.integers(0, 999))
    def test_full_tree_within_replicated_bound(self, d, seed):
        """The pinned root chain may cost extra at lower levels, but the
        whole tree can never beat the per-level unconstrained optima and
        must stay within the all-sort upper bound."""
        rng = np.random.default_rng(seed)
        views = all_views(d)
        est = {v: float(rng.integers(1, 10_000)) for v in views}
        tree = build_schedule_tree(views, tuple(range(d)), est)
        lat = Lattice.full(d)
        lower = sum(
            level_cost(
                match_level_replicated(
                    lat.level(k), lat.level(k + 1), est
                ),
                est,
            )
            for k in range(d)
        )
        upper = sum(
            sort_cost(max(est.get(n.parent, 1.0), 1.0))
            for n in tree.nodes.values()
            if n.parent is not None
        )
        total = tree.estimated_cost(est)
        assert lower - 1e-6 <= total <= upper + 1e-6
