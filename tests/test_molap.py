"""Tests for the MOLAP dense-array comparator."""

import numpy as np
import pytest

from repro.baselines.molap import (
    MolapCube,
    build_molap_cube,
    space_comparison,
)
from repro.baselines.reference import reference_cube
from repro.core.views import all_views
from tests.conftest import make_relation

CARDS = (8, 6, 4)


@pytest.fixture(scope="module")
def dataset():
    return make_relation(2000, CARDS, seed=31)


class TestBuildMolap:
    def test_matches_rolap_reference(self, dataset):
        cube = build_molap_cube(dataset, CARDS)
        ref = reference_cube(dataset, CARDS)
        for view, want in ref.items():
            got = cube.view_relation(view)
            # occupancy comes from the rolled-up counts, so occupied
            # cells are exact even where measures sum to zero
            assert got.same_content(want), view

    def test_zero_sum_cells_survive(self):
        """A cell whose measures cancel to 0.0 is still occupied — the
        count roll-up distinguishes it from an absent cell."""
        dims = np.array(
            [[0, 0, 0], [0, 0, 0], [1, 1, 1]], dtype=np.int64
        )
        measure = np.array([2.5, -2.5, 7.0])
        from repro.storage.table import Relation

        rel = Relation(dims, measure)
        cube = build_molap_cube(rel, (2, 2, 2))
        ref = reference_cube(rel, (2, 2, 2))
        for view, want in ref.items():
            got = cube.view_relation(view)
            assert got.same_content(want), view
        base = cube.view_relation((0, 1, 2))
        assert base.nrows == 2  # the zero-sum cell is present
        assert 0.0 in base.measure.tolist()

    def test_all_views_materialised(self, dataset):
        cube = build_molap_cube(dataset, CARDS)
        assert set(cube.views) == set(all_views(3))

    def test_subset_of_views(self, dataset):
        cube = build_molap_cube(dataset, CARDS, views=[(0,), (0, 1)])
        assert set(cube.views) == {(0,), (0, 1)}

    def test_cell_counts_are_key_space(self, dataset):
        cube = build_molap_cube(dataset, CARDS)
        assert cube.cells((0, 1)) == 8 * 6
        assert cube.cells(()) == 1
        assert cube.cells((0, 1, 2)) == 8 * 6 * 4

    def test_memory_wall_enforced(self, dataset):
        big = make_relation(10, (3000, 2500, 2000), seed=1)
        with pytest.raises(MemoryError, match="scaling wall"):
            build_molap_cube(big, (3000, 2500, 2000))

    def test_total_cells(self, dataset):
        cube = build_molap_cube(dataset, CARDS)
        want = sum(
            int(np.prod([CARDS[i] for i in v])) if v else 1
            for v in all_views(3)
        )
        assert cube.total_cells() == want


class TestSpaceArgument:
    def test_rolap_linear_molap_product(self, dataset):
        """The paper's claim: ROLAP space is linear in occupied rows;
        MOLAP space is the cardinality product — on sparse views MOLAP
        loses by orders of magnitude."""
        sparse_cards = (100, 80, 60)
        rel = make_relation(1000, sparse_cards, seed=7)
        ref = reference_cube(rel, sparse_cards)
        rows = {v: r.nrows for v, r in ref.items()}
        table = space_comparison(rows, sparse_cards)
        top = next(t for t in table if t[0] == (0, 1, 2))
        _, rolap_bytes, molap_bytes = top
        assert molap_bytes > rolap_bytes * 100  # 480k cells vs <=1k rows

    def test_dense_views_favor_molap(self):
        """On genuinely dense views the array wins (context for why MOLAP
        exists at all)."""
        cards = (4, 3)
        rel = make_relation(5000, cards, seed=2)  # every cell occupied
        ref = reference_cube(rel, cards)
        rows = {v: r.nrows for v, r in ref.items()}
        table = space_comparison(rows, cards, bytes_per_rolap_row=16,
                                 bytes_per_cell=8)
        _, rolap_bytes, molap_bytes = next(
            t for t in table if t[0] == (0, 1)
        )
        assert molap_bytes < rolap_bytes

    def test_table_sorted_by_level(self, dataset):
        ref = reference_cube(dataset, CARDS)
        rows = {v: r.nrows for v, r in ref.items()}
        table = space_comparison(rows, CARDS)
        levels = [len(t[0]) for t in table]
        assert levels == sorted(levels)
