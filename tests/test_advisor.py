"""Tests for the greedy view-selection advisor (HRU)."""

import pytest

from repro.core.estimate import estimate_view_sizes
from repro.core.views import all_views
from repro.olap.advisor import select_views, workload_cost
from tests.conftest import make_relation


def toy_sizes():
    """The classic HRU-style toy lattice."""
    return {
        (0, 1, 2): 100.0,  # top / raw
        (0, 1): 50.0,
        (0, 2): 75.0,
        (1, 2): 20.0,
        (0,): 30.0,
        (1,): 10.0,
        (2,): 15.0,
        (): 1.0,
    }


class TestWorkloadCost:
    def test_base_cost_is_top_per_query(self):
        sizes = toy_sizes()
        cost = workload_cost([(0,), (1,)], [], sizes, (0, 1, 2))
        assert cost == 200.0

    def test_ancestor_lookup(self):
        sizes = toy_sizes()
        cost = workload_cost([(1,)], [(1, 2)], sizes, (0, 1, 2))
        assert cost == 20.0  # answered from (1,2)

    def test_exact_match_cheapest(self):
        sizes = toy_sizes()
        cost = workload_cost([(1,)], [(1,), (1, 2)], sizes, (0, 1, 2))
        assert cost == 10.0


class TestSelectViews:
    def test_covers_workload_and_reduces_cost(self):
        sizes = toy_sizes()
        workload = [(0,), (1,), (1, 2)]
        result = select_views(workload, sizes)
        assert result.final_cost < result.base_cost
        # everything in the workload is answerable below raw cost
        cost = workload_cost(workload, result.selected, sizes, (0, 1, 2))
        assert cost == result.final_cost

    def test_first_pick_maximises_benefit_per_row(self):
        sizes = toy_sizes()
        workload = [(1,), (2,), (1, 2)]
        result = select_views(workload, sizes)
        # (1,2) answers all three queries: benefit (3*100 - 3*20)/20 = 12/row,
        # unbeatable by any single other view
        assert result.selected[0] == (1, 2)

    def test_frequency_weighting(self):
        sizes = toy_sizes()
        hot = [(0,)] * 10 + [(1,)]
        result = select_views(hot, sizes, max_views=1)
        assert result.selected == [(0,)]

    def test_max_views_cap(self):
        result = select_views(
            [(0,), (1,), (2,)], toy_sizes(), max_views=2
        )
        assert len(result.selected) <= 2

    def test_budget_respected(self):
        sizes = toy_sizes()
        result = select_views([(0,), (1,), (1, 2)], sizes, budget_rows=25.0)
        assert sum(sizes[v] for v in result.selected) <= 25.0

    def test_zero_budget_selects_nothing(self):
        result = select_views([(0,)], toy_sizes(), budget_rows=0.0)
        assert result.selected == []
        assert result.final_cost == result.base_cost

    def test_missing_estimate_rejected(self):
        with pytest.raises(KeyError):
            select_views([(5,)], toy_sizes())

    def test_describe(self):
        result = select_views([(1,)], toy_sizes())
        assert "selected" in result.describe()

    def test_monotone_improvement(self):
        """Every greedy step must strictly reduce the workload cost."""
        sizes = toy_sizes()
        result = select_views([(0,), (1,), (2,), (0, 1)], sizes)
        costs = [result.base_cost]
        for _, benefit, _ in result.steps:
            costs.append(costs[-1] - benefit)
        assert all(b < a for a, b in zip(costs, costs[1:]))
        assert costs[-1] == pytest.approx(result.final_cost)


class TestEndToEnd:
    def test_advisor_feeds_partial_cube(self):
        """Advisor output is directly buildable and serves the workload."""
        from repro.config import MachineSpec
        from repro.core.cube import build_partial_cube
        from repro.olap import Query, QueryEngine

        cards = (10, 8, 5, 3)
        rel = make_relation(3000, cards, seed=12)
        sizes = estimate_view_sizes(
            rel.dims, cards, all_views(4), method="exact"
        )
        workload = [(0,), (1, 2), (3,), (1,)]
        advice = select_views(workload, sizes, max_views=5)
        assert advice.selected
        cube = build_partial_cube(
            rel, cards, advice.selected + [tuple(range(4))],
            MachineSpec(p=2),
        )
        engine = QueryEngine(cube)
        for query in workload:
            got = engine.answer(Query(group_by=query))
            assert got.nrows > 0


class TestGreedyGuarantee:
    def test_greedy_within_constant_of_optimal(self):
        """HRU's theorem: greedy benefit is >= (1 - 1/e) ~ 63% of the
        optimal benefit for the same number of views.  Check exhaustively
        on randomised small instances."""
        import itertools
        import random

        rng = random.Random(7)
        for trial in range(20):
            d = 3
            views = all_views(d)
            sizes = {v: float(rng.randint(1, 100)) for v in views}
            sizes[tuple(range(d))] = 1000.0  # the top view
            workload = [
                rng.choice(views) for _ in range(rng.randint(1, 5))
            ]
            k = rng.randint(1, 3)
            result = select_views(workload, sizes, max_views=k)
            greedy_benefit = result.saving

            top = tuple(range(d))
            candidates = [v for v in views if v != top]
            best = 0.0
            for combo in itertools.combinations(candidates, k):
                cost = workload_cost(workload, list(combo), sizes, top)
                best = max(best, result.base_cost - cost)
            assert greedy_benefit >= 0.63 * best - 1e-9, (
                trial, greedy_benefit, best,
            )
