"""Tests for the serving tier: fence index, access paths, store v2,
byte-budgeted cache, and the QueryService worker pool."""

import os
import pickle

import numpy as np
import pytest

from repro.baselines.reference import reference_view
from repro.config import MachineSpec, RunResult
from repro.core.cube import CubeResult, build_data_cube
from repro.core.viewdata import ViewData
from repro.olap import (
    CachedQueryEngine,
    CubeStore,
    FenceIndex,
    Query,
    QueryEngine,
    QueryPlanner,
    QueryService,
    ResultCache,
)
from repro.olap.index import classify_access, key_bounds
from repro.olap.servebench import (
    run_at_rate,
    serving_workload,
    synthetic_serving_cube,
)
from repro.storage.table import Relation
from tests.conftest import make_relation

CARDS = (12, 8, 5, 3)


@pytest.fixture(scope="module")
def dataset():
    return make_relation(5000, CARDS, seed=11)


@pytest.fixture(scope="module")
def cube(dataset):
    return build_data_cube(dataset, CARDS, MachineSpec(p=4))


def oracle(dataset, group_by, filters=None, agg="sum"):
    mask = np.ones(dataset.nrows, dtype=bool)
    for dim, (lo, hi) in (filters or {}).items():
        mask &= (dataset.dims[:, dim] >= lo) & (dataset.dims[:, dim] <= hi)
    filtered = Relation(dataset.dims[mask], dataset.measure[mask])
    return reference_view(filtered, CARDS, group_by, agg)


# ---------------------------------------------------------------------------
# fence index
# ---------------------------------------------------------------------------


class TestFenceIndex:
    def test_window_covers_every_range(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.integers(0, 500, 913, dtype=np.int64))
        fence = FenceIndex.build(keys, stride=16)
        for lo, hi in [(0, 499), (5, 5), (250, 260), (499, 499), (600, 700)]:
            row_lo, row_hi = fence.window(lo, hi)
            want_lo = int(np.searchsorted(keys, lo, side="left"))
            want_hi = int(np.searchsorted(keys, hi, side="right"))
            assert row_lo <= want_lo and row_hi >= want_hi

    def test_window_keeps_boundary_duplicates(self):
        keys = np.array([5, 5, 5, 5, 5, 9], dtype=np.int64)
        fence = FenceIndex.build(keys, stride=2)
        row_lo, row_hi = fence.window(5, 5)
        assert row_lo == 0 and row_hi >= 5

    def test_empty_and_miss(self):
        fence = FenceIndex.build(np.empty(0, dtype=np.int64))
        assert fence.window(0, 10) == (0, 0)
        fence = FenceIndex.build(np.array([7], dtype=np.int64), stride=4)
        assert fence.window(9, 3) == (0, 0)  # inverted range

    def test_manifest_roundtrip(self):
        keys = np.arange(0, 1000, 3, dtype=np.int64)
        fence = FenceIndex.build(keys, stride=32)
        back = FenceIndex.from_manifest(fence.to_manifest())
        assert back.stride == fence.stride
        assert back.nrows == fence.nrows
        assert np.array_equal(back.keys, fence.keys)


# ---------------------------------------------------------------------------
# access-path classification
# ---------------------------------------------------------------------------


class TestClassifyAccess:
    def test_point_prefix_then_group(self):
        plan = classify_access((0, 1, 2), (1, 2), {0: (3, 3)})
        assert plan.kind == "index"
        assert plan.prefix_len == 1 and plan.monotone

    def test_range_closes_prefix(self):
        plan = classify_access((0, 1, 2), (2,), {0: (1, 4), 1: (2, 2)})
        # the range on dim 0 ends the prefix; dim 1's point filter is
        # residual, dim 2 group projection is not monotone
        assert plan.prefix_len == 1
        assert plan.kind == "index+sort"
        assert plan.residual == ((1, (2, 2)),)

    def test_unfiltered_leading_dim_means_scan(self):
        plan = classify_access((0, 1, 2), (2,), {1: (2, 2)})
        assert plan.kind == "scan" and plan.prefix_len == 0

    def test_trailing_range_on_group_dim_folds_into_prefix(self):
        plan = classify_access((0, 1), (1,), {0: (2, 2), 1: (0, 3)})
        assert plan.kind == "index"
        assert plan.prefix_len == 2  # the range rides the key bounds
        assert plan.group_filters == () and plan.residual == ()

    def test_group_filter_beyond_prefix_moves_to_groups(self):
        plan = classify_access((0, 1, 2), (1, 2), {0: (2, 2), 2: (0, 1)})
        assert plan.kind == "index"
        assert plan.prefix_len == 1
        assert plan.group_filters == ((2, (0, 1)),)
        assert plan.residual == ()

    def test_key_bounds_open_suffix(self):
        plan = classify_access((0, 1), (1,), {0: (2, 2)})
        lo, hi = key_bounds((0, 1), (4, 8), plan, {0: (2, 2)})
        assert lo == 2 * 8 and hi == 2 * 8 + 7


# ---------------------------------------------------------------------------
# index path vs scan path vs oracle
# ---------------------------------------------------------------------------


class TestIndexedExecution:
    QUERIES = [
        Query(group_by=(0,)),
        Query(group_by=(0, 1), filters={2: (1, 3)}),
        Query(group_by=(1,), filters={0: (2, 2), 3: (0, 1)}),
        Query(group_by=(2, 3), filters={0: (5, 5)}),
        Query(group_by=(), filters={1: (0, 4)}),
        Query(group_by=(0, 2), filters={0: (1, 6)}, having=(">=", 10.0)),
        Query(group_by=(1, 3), filters={1: (2, 6), 2: (0, 2)}),
    ]

    def test_bit_identical_to_scan_and_oracle(self, cube, dataset):
        scan = QueryEngine(cube, index=False)
        idx = QueryEngine(cube, index=True)
        for query in self.QUERIES:
            a = scan.answer(query)
            b = idx.answer(query)
            assert np.array_equal(a.dims, b.dims), query.describe()
            assert np.array_equal(a.measure, b.measure), query.describe()
            if query.having is None:
                want = oracle(dataset, query.group_by, dict(query.filters))
                assert b.same_content(want), query.describe()

    def test_explain_reports_access_path(self, cube):
        idx = QueryEngine(cube, index=True)
        scan = QueryEngine(cube, index=False)
        point = Query(group_by=(), filters={d: (1, 1) for d in range(4)})
        assert idx.explain(point).access_path in ("index", "index+sort")
        assert scan.explain(point).access_path == "scan"


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------


class TestPlannerOrders:
    def test_prefers_order_compatible_view_at_equal_rows(self):
        rows = {(0, 1): 100, (1, 2): 100}
        orders = {(0, 1): (1, 0), (1, 2): (1, 2)}
        planner = QueryPlanner(rows, orders)
        plan = planner.plan(Query(group_by=(2,), filters={1: (3, 3)}))
        assert plan.view == (1, 2)
        assert plan.access_path == "index"
        # without order info the tie falls to the lexicographically
        # first candidate
        bare = QueryPlanner(rows)
        q = Query(group_by=(1,))
        assert bare.plan(q).view == (0, 1)
        assert bare.plan(q).access_path == "scan"

    def test_smaller_view_still_wins_over_order(self):
        rows = {(0, 1): 50, (1, 2): 500}
        orders = {(1, 2): (1, 2)}
        planner = QueryPlanner(rows, orders)
        plan = planner.plan(Query(group_by=(1,)))
        assert plan.view == (0, 1) and plan.scan_rows == 50


# ---------------------------------------------------------------------------
# Query hashability (satellite)
# ---------------------------------------------------------------------------


class TestQueryHashable:
    def test_hash_and_equality(self):
        a = Query(group_by=(1, 0), filters={2: (1, 3), 0: 5})
        b = Query(group_by=(0, 1), filters={0: (5, 5), 2: (1, 3)})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
        assert {a: "x"}[b] == "x"

    def test_filters_immutable(self):
        q = Query(group_by=(0,), filters={1: (2, 3)})
        with pytest.raises(TypeError):
            q.filters[1] = (0, 0)
        with pytest.raises(TypeError):
            q.filters.clear()

    def test_pickle_roundtrip(self):
        q = Query(group_by=(0,), filters={1: (2, 3)}, having=(">=", 1.0))
        back = pickle.loads(pickle.dumps(q))
        assert back == q and hash(back) == hash(q)
        assert back.filters[1] == (2, 3)


# ---------------------------------------------------------------------------
# store format 2 + format compatibility (satellite)
# ---------------------------------------------------------------------------


class TestStoreV2:
    def test_formats_answer_identically(self, cube, tmp_path):
        p1 = CubeStore.save(cube, str(tmp_path / "v1"), format=1)
        p2 = CubeStore.save(cube, str(tmp_path / "v2"))
        assert int(CubeStore._read_manifest(p2)["format"]) == 2
        assert int(CubeStore._read_manifest(p1)["format"]) == 1
        live = QueryEngine(cube, index=False)
        h1, h2 = CubeStore.open(p1), CubeStore.open(p2)
        for query in TestIndexedExecution.QUERIES:
            want = live.answer(query)
            for handle in (h1, h2):
                got = handle.query_engine().answer(query)
                assert np.array_equal(want.dims, got.dims)
                assert np.array_equal(want.measure, got.measure)

    def test_view_index_by_format(self, cube, tmp_path):
        p1 = CubeStore.save(cube, str(tmp_path / "v1"), format=1)
        p2 = CubeStore.save(cube, str(tmp_path / "v2"), fence_stride=64)
        h1, h2 = CubeStore.open(p1), CubeStore.open(p2)
        view = cube.views[0]
        assert h1.view_index(view) is None
        fence = h2.view_index(view)
        assert fence is not None and fence.stride == 64
        assert fence.nrows == cube.view_rows(view)

    def test_v2_preserves_distribution_and_orders(self, cube, tmp_path):
        path = CubeStore.save(cube, str(tmp_path / "v2"))
        back = CubeStore.load(path)
        for view in cube.views:
            for rank in range(len(cube.rank_views)):
                a = cube.rank_views[rank][view]
                b = back.rank_views[rank][view]
                assert a.order == b.order
                assert np.array_equal(a.keys, b.keys)
                assert np.array_equal(a.measure, b.measure)

    def test_mixed_order_view_falls_back_to_ranked(self, tmp_path):
        cards = (4, 4)
        k = np.array([1, 5, 9], dtype=np.int64)
        m = np.ones(3)
        pieces = [ViewData((0, 1), k, m), ViewData((1, 0), k, m)]
        cube = CubeResult(
            rank_views=[{(0, 1): pieces[0]}, {(0, 1): pieces[1]}],
            cardinalities=cards,
            metrics=RunResult(0.0, 0.0, 6, 1, 0, 0),
        )
        path = CubeStore.save(cube, str(tmp_path / "mixed"))
        handle = CubeStore.open(path)
        assert handle.sorted_views == {}
        assert handle.view_index((0, 1)) is None
        back = handle.cube
        assert back.rank_views[1][(0, 1)].order == (1, 0)
        assert np.array_equal(back.rank_views[0][(0, 1)].keys, k)

    def test_unknown_format_rejected(self, cube, tmp_path):
        with pytest.raises(ValueError, match="format"):
            CubeStore.save(cube, str(tmp_path / "x"), format=4)

    def test_meter_counts_index_reads(self, cube, tmp_path):
        path = CubeStore.save(cube, str(tmp_path / "v2"))
        handle = CubeStore.open(path)
        engine = handle.query_engine()
        engine.answer(Query(group_by=(), filters={d: (1, 1) for d in range(4)}))
        snap = handle.meter.snapshot()
        assert snap["range_reads"] > 0
        assert snap["rows_touched"] < cube.view_rows(tuple(range(4)))


# ---------------------------------------------------------------------------
# byte-budgeted cache (satellite: hashable key + new eviction)
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_byte_budget_evicts_lru(self):
        cache = ResultCache(byte_budget=100, admit_fraction=0.5)
        assert cache.put("a", "A", 40)
        assert cache.put("b", "B", 40)
        assert cache.get("a") == "A"  # refresh a
        assert cache.put("c", "C", 40)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("c") == "C"
        assert cache.stats.evictions == 1
        assert cache.bytes_held == 80

    def test_admission_threshold_rejects_huge(self):
        cache = ResultCache(byte_budget=100, admit_fraction=0.25)
        assert not cache.put("big", "X", 26)
        assert cache.stats.rejected == 1
        assert len(cache) == 0
        assert cache.put("small", "y", 25)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResultCache(byte_budget=0)
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(admit_fraction=0.0)

    def test_cached_engine_uses_query_as_key(self, cube):
        engine = CachedQueryEngine(cube, capacity=8, byte_budget=1 << 20)
        q1 = Query(group_by=(0, 1), filters={2: (1, 3)})
        q2 = Query(group_by=(1, 0), filters={2: (1, 3)})  # same query
        r1 = engine.answer(q1)
        r2 = engine.answer(q2)
        assert r1 is r2
        assert engine.stats.hits == 1 and engine.stats.misses == 1
        assert engine.bytes_held > 0

    def test_capacity_still_enforced(self, cube):
        with pytest.raises(ValueError):
            CachedQueryEngine(cube, capacity=0)
        engine = CachedQueryEngine(cube, capacity=2)
        for dim in range(3):
            engine.answer(Query(group_by=(dim,)))
        assert len(engine) == 2
        assert engine.stats.evictions == 1


# ---------------------------------------------------------------------------
# synthetic serving cube + workload
# ---------------------------------------------------------------------------


class TestServeBench:
    def test_rollups_match_base(self):
        cube = synthetic_serving_cube(2000, (32, 16, 8), p=3, seed=4)
        engine = QueryEngine(cube, index=False)
        base = cube.view_relation((0, 1, 2))
        for view in [(0,), (1, 2)]:
            got = engine.answer(Query(group_by=view))
            want = reference_view(base, (32, 16, 8), view, "sum")
            assert got.same_content(want)

    def test_workload_is_seeded_and_typed(self):
        w1 = serving_workload((32, 16, 8), n=50, seed=9)
        w2 = serving_workload((32, 16, 8), n=50, seed=9)
        assert [q for _, q in w1] == [q for _, q in w2]
        kinds = {kind for kind, _ in w1}
        assert kinds <= {"point", "rollup", "slice"}


# ---------------------------------------------------------------------------
# query service
# ---------------------------------------------------------------------------


class TestQueryService:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        cube = synthetic_serving_cube(20_000, (32, 16, 16, 8), p=4, seed=2)
        path = str(tmp_path_factory.mktemp("svc") / "cube.d")
        CubeStore.save(cube, path)
        return path

    def test_pool_parity_with_engine(self, store_path):
        handle = CubeStore.open(store_path)
        engine = QueryEngine(handle.cube, index=False)
        workload = [
            q for _, q in serving_workload((32, 16, 16, 8), n=16, seed=5)
        ]
        with QueryService(store_path, workers=2) as service:
            results = service.answer_many(workload, timeout=90)
        for query, got in zip(workload, results):
            want = engine.answer(query)
            assert np.array_equal(want.dims, got.dims), query.describe()
            assert np.array_equal(want.measure, got.measure)

    def test_cache_and_inflight_dedup(self, store_path):
        query = Query(group_by=(0,))
        with QueryService(store_path, workers=1) as service:
            tickets = [service.submit(query) for _ in range(4)]
            results = [service.wait(t, timeout=60) for t in tickets]
            again = service.answer(query, timeout=60)
            stats = service.stats()
        assert stats["executed"] == 1  # 3 dedups + 1 cache hit
        assert stats["submitted"] == 5
        assert stats["cache"]["hits"] == 1
        for r in results + [again]:
            assert np.array_equal(r.measure, results[0].measure)

    def test_error_relayed_with_original_type(self, store_path):
        # the worker's exception type crosses the queue: the engine
        # raises LookupError for an uncovered view, and the caller sees
        # LookupError (not a generic RuntimeError wrapper)
        with QueryService(store_path, workers=1) as service:
            with pytest.raises(LookupError, match="worker 0"):
                service.answer(Query(group_by=(9,)), timeout=60)
            # the pool still serves after a failed query
            ok = service.answer(Query(group_by=(1,)), timeout=60)
        assert ok.nrows == 16

    def test_rate_runner_reports(self, store_path):
        workload = [
            q for _, q in serving_workload((32, 16, 16, 8), n=32, seed=6)
        ]
        with QueryService(
            store_path, workers=1, byte_budget=None
        ) as service:
            rung = run_at_rate(service, workload, 20.0, 0.5)
        assert rung["completed"] == rung["submitted"] > 0
        assert rung["errors"] == 0 and rung["timed_out"] == 0
        assert rung["p50_ms"] is not None and rung["p50_ms"] > 0

    def test_scan_pinned_service(self, store_path):
        query = Query(group_by=(), filters={0: (3, 3)})
        handle = CubeStore.open(store_path)
        want = QueryEngine(handle.cube, index=False).answer(query)
        with QueryService(store_path, workers=1, index=False) as service:
            got = service.answer(query, timeout=60)
        assert np.array_equal(want.dims, got.dims)
        assert np.array_equal(want.measure, got.measure)

    def test_no_leaked_segments_after_close(self, store_path):
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            pytest.skip("no /dev/shm on this host")
        service = QueryService(store_path, workers=2)
        pids = [proc.pid for proc in service._procs]
        service.answer_many(
            [Query(group_by=(d,)) for d in range(4)], timeout=90
        )
        service.close()
        leaked = [
            name
            for name in os.listdir(shm_dir)
            for pid in pids
            if name.startswith(f"rp{pid}x")
        ]
        assert leaked == []
