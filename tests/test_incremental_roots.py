"""Tests for the incremental Di-root optimisation (beyond the paper)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reference import reference_cube
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from tests.conftest import make_relation


class TestIncrementalRoots:
    @settings(max_examples=8)
    @given(st.integers(0, 400), st.integers(1, 4), st.integers(0, 3))
    def test_identical_results(self, n, p, seed):
        cards = (9, 6, 4)
        rel = make_relation(n, cards, seed=seed)
        base = build_data_cube(rel, cards, MachineSpec(p=p))
        inc = build_data_cube(
            rel, cards, MachineSpec(p=p),
            CubeConfig(incremental_roots=True),
        )
        for view in base.views:
            assert inc.view_relation(view).same_content(
                base.view_relation(view)
            ), view

    def test_partial_cube_with_incremental_roots(self):
        cards = (10, 6, 4)
        rel = make_relation(2000, cards, seed=4)
        ref = reference_cube(rel, cards)
        cube = build_data_cube(
            rel, cards, MachineSpec(p=3),
            CubeConfig(incremental_roots=True),
            selected=[(0,), (1, 2), ()],
        )
        for view in cube.views:
            assert cube.view_relation(view).same_content(ref[view])

    def test_reduces_partition_work_on_reducing_data(self):
        """With skewed (reducing) data the previous root is much smaller
        than the raw chunk, so the partition phase gets cheaper."""
        cards = (32, 16, 12, 8, 6)
        rel = make_relation(20_000, cards, seed=6,
                            alphas=(1.5, 1.0, 0.5, 0.5, 0.5))
        spec = MachineSpec(p=4)
        base = build_data_cube(rel, cards, spec)
        inc = build_data_cube(
            rel, cards, spec, CubeConfig(incremental_roots=True)
        )

        def partition_work(cube):
            return sum(
                v for k, v in cube.metrics.phase_seconds.items()
                if "partition-sort" in k
            )

        assert partition_work(inc) < partition_work(base)

    def test_aggregates_compose(self):
        """min/max/count must survive the root-of-root re-aggregation."""
        cards = (8, 5, 3)
        rel = make_relation(1500, cards, seed=9)
        for agg in ("count", "min", "max"):
            ref = reference_cube(rel, cards, agg=agg)
            cube = build_data_cube(
                rel, cards, MachineSpec(p=3),
                CubeConfig(incremental_roots=True, agg=agg),
            )
            for view, want in ref.items():
                assert cube.view_relation(view).same_content(want), (agg, view)
