"""Tests for repro.core.sampling: the decimation sample of Section 2.4."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sampling import (
    DecimationSampler,
    decimation_sample,
    estimate_range_count,
)


class TestStreamingSampler:
    def test_underfull_keeps_everything(self):
        s = DecimationSampler(10)
        s.feed(np.arange(7))
        assert s.sample().tolist() == list(range(7))
        assert s.stride == 1

    def test_exact_capacity(self):
        s = DecimationSampler(8)
        s.feed(np.arange(8))
        assert s.sample().tolist() == list(range(8))

    def test_first_decimation(self):
        s = DecimationSampler(4)
        s.feed(np.arange(8))
        # after index 4 arrives: keep 0,2 then stride 2 -> 0,2,4,6
        assert s.sample().tolist() == [0, 2, 4, 6]
        assert s.stride == 2

    def test_double_decimation(self):
        s = DecimationSampler(4)
        s.feed(np.arange(17))
        assert s.stride == 8
        assert s.sample().tolist() == [0, 8, 16]

    def test_chunked_feed_equals_single_feed(self):
        keys = np.arange(100)
        a = DecimationSampler(16)
        a.feed(keys)
        b = DecimationSampler(16)
        for chunk in np.array_split(keys, 7):
            b.feed(chunk)
        assert a.sample().tolist() == b.sample().tolist()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DecimationSampler(0)

    @given(st.integers(0, 2000), st.integers(1, 64))
    def test_streaming_equals_vectorised(self, n, capacity):
        keys = np.arange(n, dtype=np.int64) * 3
        s = DecimationSampler(capacity)
        s.feed(keys)
        assert s.sample().tolist() == decimation_sample(keys, capacity).tolist()

    @given(st.integers(1, 3000), st.integers(1, 64))
    def test_size_bounds(self, n, capacity):
        sample = decimation_sample(np.arange(n, dtype=np.int64), capacity)
        assert 1 <= sample.size <= capacity
        if n > capacity:
            assert sample.size > capacity // 2  # never worse than half full

    @given(st.integers(1, 3000), st.integers(1, 64))
    def test_stride_is_power_of_two(self, n, capacity):
        keys = np.arange(n, dtype=np.int64)
        sample = decimation_sample(keys, capacity)
        if sample.size > 1:
            stride = sample[1] - sample[0]
            assert stride & (stride - 1) == 0
            assert np.all(np.diff(sample) == stride)


class TestVectorised:
    def test_empty(self):
        assert decimation_sample(np.empty(0, dtype=np.int64), 8).size == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            decimation_sample(np.arange(3), 0)


class TestRangeCountEstimation:
    def test_exact_on_full_sample(self):
        keys = np.arange(100, dtype=np.int64)
        boundaries = np.array([24, 49, 74], dtype=np.int64)
        est = estimate_range_count(keys, 100, boundaries)
        assert est.tolist() == [25.0, 25.0, 25.0, 25.0]

    def test_sums_to_total(self):
        keys = np.sort(np.random.default_rng(0).integers(0, 10**6, 5000))
        sample = decimation_sample(keys, 128)
        boundaries = np.array([10**5, 5 * 10**5], dtype=np.int64)
        est = estimate_range_count(sample, 5000, boundaries)
        assert est.sum() == pytest.approx(5000)

    def test_paper_accuracy_claim(self):
        """100·p equally spaced samples give ~1/p% accuracy for |v'_j|."""
        p = 8
        rng = np.random.default_rng(1)
        keys = np.sort(rng.integers(0, 2**40, 200_000))
        sample = decimation_sample(keys, 100 * p)
        boundaries = keys[:: len(keys) // p][1:p]
        est = estimate_range_count(sample, len(keys), boundaries)
        true = np.diff(
            np.concatenate(
                ([0], np.searchsorted(keys, boundaries, "right"), [len(keys)])
            )
        )
        rel_err = np.abs(est - true) / len(keys)
        assert rel_err.max() < 0.02  # within 2% of the total

    def test_empty_inputs(self):
        est = estimate_range_count(
            np.empty(0, dtype=np.int64), 0, np.array([5], dtype=np.int64)
        )
        assert est.tolist() == [0.0, 0.0]

    def test_all_below_first_boundary(self):
        keys = np.arange(10, dtype=np.int64)
        est = estimate_range_count(keys, 10, np.array([100], dtype=np.int64))
        assert est.tolist() == [10.0, 0.0]
