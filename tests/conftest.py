"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config import MachineSpec
from repro.storage.table import Relation

# The cube pipeline spawns threads; generous deadlines keep hypothesis
# from flagging scheduler noise as slow tests.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xBEEF)


@pytest.fixture
def small_spec() -> MachineSpec:
    """A 4-rank machine with tight memory to exercise external paths."""
    return MachineSpec(p=4, memory_budget=1 << 12, block_size=1 << 6)


def make_relation(
    n: int,
    cards: tuple[int, ...],
    seed: int = 0,
    alphas: tuple[float, ...] | None = None,
) -> Relation:
    """Random relation with the given cardinalities (test helper)."""
    from repro.data.generator import DatasetSpec, generate_dataset

    if alphas is None:
        alphas = (0.0,) * len(cards)
    return generate_dataset(
        DatasetSpec(n=n, cardinalities=cards, alphas=alphas, seed=seed)
    )
