"""Property-based fuzzing of Merge-Partitions with adversarial layouts.

The unit tests in test_merge.py use hand-crafted layouts; here hypothesis
generates arbitrary per-rank view pieces — arbitrary overlaps, empty
ranks, heavy duplication, single-key floods — and the merged outcome is
checked against a brute-force combine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CubeConfig, MachineSpec
from repro.core.merge import merge_partitions
from repro.core.pipesort import ScheduleTree
from repro.core.viewdata import ViewData
from repro.mpi.engine import run_spmd
from repro.storage.scan import aggregate_sorted_keys


@st.composite
def rank_pieces(draw):
    """Per-rank sorted, locally aggregated pieces of one 2-dim view."""
    p = draw(st.integers(2, 5))
    pieces = []
    for _ in range(p):
        keys = draw(
            st.lists(st.integers(0, 40), min_size=0, max_size=30)
        )
        uniq = sorted(set(keys))
        vals = [
            float(draw(st.integers(1, 9))) for _ in uniq
        ]
        pieces.append((np.array(uniq, dtype=np.int64),
                       np.array(vals, dtype=np.float64)))
    return p, pieces


def brute_force(pieces, agg="sum"):
    all_keys = np.concatenate([k for k, _ in pieces])
    all_vals = np.concatenate([v for _, v in pieces])
    order = np.argsort(all_keys, kind="stable")
    return aggregate_sorted_keys(all_keys[order], all_vals[order], agg)


def run_merge(p, pieces, order, root_order, gamma=0.03, agg="sum"):
    root_view = tuple(sorted(root_order))

    def prog(comm):
        tree = ScheduleTree(root_view, root_order)
        keys, vals = pieces[comm.rank]
        local = {
            tuple(sorted(order)): ViewData(order, keys, vals)
        }
        cfg = CubeConfig(gamma_merge=gamma, agg=agg)
        merged, report = merge_partitions(comm, local, tree, cfg, 1 << 16)
        return merged[tuple(sorted(order))], report

    return run_spmd(prog, MachineSpec(p=p))


class TestMergeFuzz:
    @settings(max_examples=40)
    @given(rank_pieces(), st.sampled_from([0.0001, 0.03, 0.5]))
    def test_nonprefix_view_fully_merged(self, data, gamma):
        """Arbitrary overlapping pieces of a non-prefix view must merge to
        exactly the brute-force combination, for any γ."""
        p, pieces = data
        # order (1,) is not a prefix of root order (0, 1)
        res = run_merge(p, pieces, order=(1,), root_order=(0, 1),
                        gamma=gamma)
        got_keys = np.concatenate(
            [res.rank_results[j][0].keys for j in range(p)]
        )
        got_vals = np.concatenate(
            [res.rank_results[j][0].measure for j in range(p)]
        )
        want_keys, want_vals = brute_force(pieces)
        order = np.argsort(got_keys)
        assert np.array_equal(got_keys[order], want_keys)
        assert np.allclose(got_vals[order], want_vals)
        # full agglomeration: no key on two ranks
        assert np.unique(got_keys).size == got_keys.size

    @settings(max_examples=40)
    @given(rank_pieces())
    def test_prefix_view_boundary_chains(self, data):
        """Prefix views carry only boundary duplicates in real runs, but
        the case-1 resolver must survive arbitrary *globally sorted*
        inputs: sort the pieces' key ranges so rank slices ascend."""
        p, pieces = data
        # impose global sortedness: concatenate, sort, re-slice; keys can
        # straddle slice boundaries arbitrarily (incl. whole-rank spans)
        keys, vals = brute_force(pieces)  # unique keys + summed vals
        # expand back to duplicated boundary form: split each key's value
        # across a random-ish span of consecutive ranks
        per_rank_keys = [[] for _ in range(p)]
        per_rank_vals = [[] for _ in range(p)]
        for idx, (key, val) in enumerate(zip(keys, vals)):
            start = idx % p
            span = 1 + (idx % 3)
            ranks = [min(start + s, p - 1) for s in range(span)]
            share = val / len(ranks)
            for rank in ranks:
                per_rank_keys[rank].append(key)
                per_rank_vals[rank].append(share)
        new_pieces = []
        for rank in range(p):
            rank_keys = np.array(per_rank_keys[rank], dtype=np.int64)
            rank_vals = np.array(per_rank_vals[rank], dtype=np.float64)
            order = np.argsort(rank_keys, kind="stable")
            rank_keys, rank_vals = rank_keys[order], rank_vals[order]
            rank_keys, rank_vals = aggregate_sorted_keys(
                rank_keys, rank_vals, "sum"
            )
            new_pieces.append((rank_keys, rank_vals))
        # pieces are now globally sorted? keys assigned cyclically are NOT
        # globally sorted across ranks, so only run when they are.
        boundaries_ok = True
        prev_max = -1
        for rank_keys, _ in new_pieces:
            if rank_keys.size:
                if rank_keys[0] < prev_max:
                    boundaries_ok = False
                prev_max = max(prev_max, int(rank_keys[-1]))
        if not boundaries_ok:
            return  # only globally-sorted layouts are case-1 inputs
        res = run_merge(p, new_pieces, order=(0,), root_order=(0, 1))
        got_keys = np.concatenate(
            [res.rank_results[j][0].keys for j in range(p)]
        )
        got_vals = np.concatenate(
            [res.rank_results[j][0].measure for j in range(p)]
        )
        order = np.argsort(got_keys)
        assert np.array_equal(got_keys[order], keys)
        assert np.allclose(got_vals[order], vals)
        assert np.unique(got_keys).size == got_keys.size

    @settings(max_examples=15)
    @given(rank_pieces(), st.sampled_from(["min", "max"]))
    def test_other_aggregates(self, data, agg):
        p, pieces = data
        res = run_merge(p, pieces, order=(1,), root_order=(0, 1), agg=agg)
        got_keys = np.concatenate(
            [res.rank_results[j][0].keys for j in range(p)]
        )
        got_vals = np.concatenate(
            [res.rank_results[j][0].measure for j in range(p)]
        )
        want_keys, want_vals = brute_force(pieces, agg)
        order = np.argsort(got_keys)
        assert np.array_equal(got_keys[order], want_keys)
        assert np.allclose(got_vals[order], want_vals)

    @settings(max_examples=15)
    @given(st.integers(2, 5), st.integers(1, 6))
    def test_single_key_flood(self, p, copies):
        """Every rank holds only the same single key: the chain spans the
        whole machine and must collapse to one row."""
        pieces = [
            (np.array([7], dtype=np.int64), np.array([1.0]))
            for _ in range(p)
        ]
        res = run_merge(p, pieces, order=(1,), root_order=(0, 1))
        got = [res.rank_results[j][0] for j in range(p)]
        total_rows = sum(g.nrows for g in got)
        total_val = sum(g.measure.sum() for g in got)
        assert total_rows == 1
        assert total_val == pytest.approx(float(p))
