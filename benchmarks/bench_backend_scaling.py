"""Host-side scaling of the process backend vs the thread backend.

The simulated clock is backend-independent (that is asserted here on
every point); what the process backend buys is *host* wall-clock — the
thread backend serialises rank compute on the GIL, the process backend
runs one worker process per rank.  This bench sweeps ``p`` over both
backends, writes a machine-readable ``BENCH_backend_scaling.json`` at
the repository root, and — only on hosts with at least 4 cores, where
the claim is physically possible — asserts the >=1.5x host-seconds
speedup at p >= 4.

Runnable standalone (``python benchmarks/bench_backend_scaling.py``) or
under pytest.  Scale knobs: ``REPRO_BENCH_N`` (rows, default 8,000) and
``REPRO_BENCH_MAXP`` (largest p, default 4 here — the sweep is
(1, 2, 4) clipped to the host).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import platform
import sys
import time

from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.data.generator import generate_dataset, paper_preset

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_backend_scaling.json"

#: Host-seconds ratio (thread / process) the process backend must reach
#: at p >= 4 when the host actually has >= 4 cores.
SPEEDUP_TARGET = 1.5


def _backends() -> tuple[str, ...]:
    if "fork" not in multiprocessing.get_all_start_methods():
        return ("thread",)
    return ("thread", "process")


def run_scaling(n: int | None = None, processors=None) -> dict:
    """Build one cube per (backend, p); return the report dict."""
    n = n or int(os.environ.get("REPRO_BENCH_N", 8_000))
    if processors is None:
        max_p = int(os.environ.get("REPRO_BENCH_MAXP", 4))
        processors = tuple(p for p in (1, 2, 4) if p <= max_p) or (1,)
    spec_ds = paper_preset(n, seed=3)
    data = generate_dataset(spec_ds)
    results = []
    for backend in _backends():
        for p in processors:
            # compute_scale=0 keeps the simulated clock deterministic so
            # the cross-backend equality below can be exact; host_seconds
            # measures real execution either way.
            machine = MachineSpec(p=p, backend=backend, compute_scale=0.0)
            t0 = time.perf_counter()
            cube = build_data_cube(data, spec_ds.cardinalities, machine)
            host = time.perf_counter() - t0
            m = cube.metrics
            results.append(
                {
                    "backend": backend,
                    "p": p,
                    "host_seconds": round(host, 4),
                    "simulated_seconds": m.simulated_seconds,
                    "comm_bytes": m.comm_bytes,
                    "disk_blocks": m.disk_blocks,
                    "output_rows": m.output_rows,
                }
            )
            print(
                f"  {backend:7s} p={p}  host {host:7.2f} s   "
                f"sim {m.simulated_seconds:8.4f} s"
            )
    speedups = {}
    by_key = {(r["backend"], r["p"]): r for r in results}
    for p in processors:
        t, pr = by_key.get(("thread", p)), by_key.get(("process", p))
        if t and pr:
            speedups[str(p)] = round(
                t["host_seconds"] / max(pr["host_seconds"], 1e-9), 3
            )
    report = {
        "bench": "backend_scaling",
        "n": n,
        "processors": list(processors),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "speedup_target": SPEEDUP_TARGET,
        "host_speedup_thread_over_process": speedups,
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    """Assert the bench's claims (metering equality always; host
    speedup only where the hardware permits it)."""
    by_key = {(r["backend"], r["p"]): r for r in report["results"]}
    metered = ("simulated_seconds", "comm_bytes", "disk_blocks", "output_rows")
    for p in report["processors"]:
        t, pr = by_key.get(("thread", p)), by_key.get(("process", p))
        if t and pr:
            for key in metered:
                assert t[key] == pr[key], (
                    f"{key} diverges between backends at p={p}: "
                    f"thread {t[key]} vs process {pr[key]}"
                )
    cores = report["cpu_count"] or 1
    eligible = [
        p
        for p in report["processors"]
        if p >= 4 and str(p) in report["host_speedup_thread_over_process"]
    ]
    if cores >= 4 and eligible:
        best = max(
            report["host_speedup_thread_over_process"][str(p)]
            for p in eligible
        )
        assert best >= SPEEDUP_TARGET, (
            f"process backend reached only {best:.2f}x host speedup at "
            f"p>=4 on a {cores}-core host (target {SPEEDUP_TARGET}x)"
        )
    elif eligible:
        print(
            f"  host has {cores} core(s); >= 4 needed for the "
            f"{SPEEDUP_TARGET}x speedup assertion — recorded only"
        )


def test_backend_scaling():
    check_report(run_scaling())


if __name__ == "__main__":
    check_report(run_scaling())
    sys.exit(0)
