"""Host-side scaling of the process backend vs the thread backend.

The simulated clock is backend-independent (that is asserted here on
every point); what the process backend buys is *host* wall-clock — the
thread backend serialises rank compute on the GIL, the process backend
runs one worker process per rank.  This bench sweeps ``p`` over both
backends, writes a machine-readable ``BENCH_backend_scaling.json`` at
the repository root, and — only on hosts with at least 4 cores, where
the claim is physically possible — asserts the >=1.5x host-seconds
speedup at p >= 4.

A second bench, :func:`run_dataplane`, A/Bs the shared-memory data
plane itself: the four (pooled x zero-copy) modes of the process
backend against the copy/unpooled legacy baseline at one ``p``, with
the thread backend as the metering reference.  It writes
``BENCH_shm_dataplane.json`` and asserts the pooled zero-copy plane's
structural wins everywhere, plus its host-time improvement where the
hardware can express it.

Runnable standalone (``python benchmarks/bench_backend_scaling.py``) or
under pytest.  Scale knobs: ``REPRO_BENCH_N`` (rows, default 8,000),
``REPRO_BENCH_MAXP`` (largest p, default 4 here — the sweep is
(1, 2, 4) clipped to the host), ``REPRO_BENCH_DATAPLANE_P`` (data-plane
bench p, default 4) and ``REPRO_BENCH_ROUNDS`` (interleaved measurement
rounds per mode, default 3).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import platform
import sys
import time

from repro.bench.reporting import format_shm_pool
from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.data.generator import generate_dataset, paper_preset

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_backend_scaling.json"
DATAPLANE_JSON_PATH = REPO_ROOT / "BENCH_shm_dataplane.json"

#: Host-seconds ratio (thread / process) the process backend must reach
#: at p >= 4 when the host actually has >= 4 cores.
SPEEDUP_TARGET = 1.5

#: Host-seconds ratio (copy/unpooled over zero-copy/pooled) the data
#: plane must reach at p = 4 when the host actually has >= 4 cores.
DATAPLANE_TARGET = 2.0

#: The four process-backend data-plane modes.  ``copy-unpooled`` is the
#: faithful legacy plane (one exact-size segment per array, per-lane
#: encodes, copying decode) and serves as the baseline.
DATAPLANE_MODES = (
    ("copy-unpooled", False, False),
    ("copy-pooled", True, False),
    ("zero-copy-unpooled", False, True),
    ("zero-copy-pooled", True, True),
)


def _backends() -> tuple[str, ...]:
    if "fork" not in multiprocessing.get_all_start_methods():
        return ("thread",)
    return ("thread", "process")


def run_scaling(n: int | None = None, processors=None) -> dict:
    """Build one cube per (backend, p); return the report dict."""
    n = n or int(os.environ.get("REPRO_BENCH_N", 8_000))
    if processors is None:
        max_p = int(os.environ.get("REPRO_BENCH_MAXP", 4))
        processors = tuple(p for p in (1, 2, 4) if p <= max_p) or (1,)
    spec_ds = paper_preset(n, seed=3)
    data = generate_dataset(spec_ds)
    results = []
    for backend in _backends():
        for p in processors:
            # compute_scale=0 keeps the simulated clock deterministic so
            # the cross-backend equality below can be exact; host_seconds
            # measures real execution either way.
            machine = MachineSpec(p=p, backend=backend, compute_scale=0.0)
            t0 = time.perf_counter()
            cube = build_data_cube(data, spec_ds.cardinalities, machine)
            host = time.perf_counter() - t0
            m = cube.metrics
            results.append(
                {
                    "backend": backend,
                    "p": p,
                    "host_seconds": round(host, 4),
                    "simulated_seconds": m.simulated_seconds,
                    "comm_bytes": m.comm_bytes,
                    "disk_blocks": m.disk_blocks,
                    "output_rows": m.output_rows,
                }
            )
            print(
                f"  {backend:7s} p={p}  host {host:7.2f} s   "
                f"sim {m.simulated_seconds:8.4f} s"
            )
    speedups = {}
    by_key = {(r["backend"], r["p"]): r for r in results}
    for p in processors:
        t, pr = by_key.get(("thread", p)), by_key.get(("process", p))
        if t and pr:
            speedups[str(p)] = round(
                t["host_seconds"] / max(pr["host_seconds"], 1e-9), 3
            )
    report = {
        "bench": "backend_scaling",
        "n": n,
        "processors": list(processors),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "speedup_target": SPEEDUP_TARGET,
        "host_speedup_thread_over_process": speedups,
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    """Assert the bench's claims (metering equality always; host
    speedup only where the hardware permits it)."""
    by_key = {(r["backend"], r["p"]): r for r in report["results"]}
    metered = ("simulated_seconds", "comm_bytes", "disk_blocks", "output_rows")
    for p in report["processors"]:
        t, pr = by_key.get(("thread", p)), by_key.get(("process", p))
        if t and pr:
            for key in metered:
                assert t[key] == pr[key], (
                    f"{key} diverges between backends at p={p}: "
                    f"thread {t[key]} vs process {pr[key]}"
                )
    cores = report["cpu_count"] or 1
    eligible = [
        p
        for p in report["processors"]
        if p >= 4 and str(p) in report["host_speedup_thread_over_process"]
    ]
    if cores >= 4 and eligible:
        best = max(
            report["host_speedup_thread_over_process"][str(p)]
            for p in eligible
        )
        assert best >= SPEEDUP_TARGET, (
            f"process backend reached only {best:.2f}x host speedup at "
            f"p>=4 on a {cores}-core host (target {SPEEDUP_TARGET}x)"
        )
    elif eligible:
        print(
            f"  host has {cores} core(s); >= 4 needed for the "
            f"{SPEEDUP_TARGET}x speedup assertion — recorded only"
        )


def run_dataplane(n: int | None = None, p: int | None = None,
                  rounds: int | None = None) -> dict:
    """A/B the four shared-memory data-plane modes at one ``p``.

    Each round builds the cube once per mode, *interleaved* (mode order
    within a round, rounds outermost) so slow host drift hits every mode
    equally; per-mode host_seconds is the best across rounds.  The thread
    backend runs once as the metering reference — every process mode must
    reproduce its simulated clock, comm bytes, disk blocks and output
    rows exactly.
    """
    n = n or int(os.environ.get("REPRO_BENCH_N", 8_000))
    p = p or int(os.environ.get("REPRO_BENCH_DATAPLANE_P", 4))
    rounds = rounds or int(os.environ.get("REPRO_BENCH_ROUNDS", 3))
    spec_ds = paper_preset(n, seed=3)
    data = generate_dataset(spec_ds)

    def build(machine):
        t0 = time.perf_counter()
        cube = build_data_cube(data, spec_ds.cardinalities, machine)
        return time.perf_counter() - t0, cube.metrics

    host_ref, ref = build(MachineSpec(p=p, backend="thread",
                                      compute_scale=0.0))
    print(f"  thread reference p={p}  host {host_ref:7.2f} s")
    results = [
        {
            "mode": "thread-reference",
            "backend": "thread",
            "host_seconds": round(host_ref, 4),
            "simulated_seconds": ref.simulated_seconds,
            "comm_bytes": ref.comm_bytes,
            "disk_blocks": ref.disk_blocks,
            "output_rows": ref.output_rows,
        }
    ]
    if "process" in _backends():
        timings: dict[str, list[float]] = {m: [] for m, _, _ in
                                           DATAPLANE_MODES}
        metrics: dict[str, object] = {}
        for _ in range(rounds):
            for mode, pool, zc in DATAPLANE_MODES:
                host, m = build(
                    MachineSpec(p=p, backend="process", compute_scale=0.0,
                                shm_pool=pool, shm_zero_copy=zc)
                )
                timings[mode].append(host)
                metrics[mode] = m
        for mode, pool, zc in DATAPLANE_MODES:
            best = min(timings[mode])
            m = metrics[mode]
            results.append(
                {
                    "mode": mode,
                    "backend": "process",
                    "shm_pool": pool,
                    "shm_zero_copy": zc,
                    "host_seconds": round(best, 4),
                    "host_seconds_rounds": [round(t, 4)
                                            for t in timings[mode]],
                    "simulated_seconds": m.simulated_seconds,
                    "comm_bytes": m.comm_bytes,
                    "disk_blocks": m.disk_blocks,
                    "output_rows": m.output_rows,
                    "shm_pool_stats": m.shm_pool,
                }
            )
            print(f"  {mode:19s} p={p}  host {best:7.2f} s  "
                  f"(best of {rounds})")
        print(format_shm_pool("  zero-copy-pooled data plane",
                              metrics["zero-copy-pooled"].shm_pool))
    by_mode = {r["mode"]: r for r in results}
    improvement = None
    base = by_mode.get("copy-unpooled")
    opt = by_mode.get("zero-copy-pooled")
    if base and opt:
        improvement = round(
            base["host_seconds"] / max(opt["host_seconds"], 1e-9), 3
        )
    report = {
        "bench": "shm_dataplane",
        "n": n,
        "p": p,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "improvement_target": DATAPLANE_TARGET,
        "host_improvement_zero_copy_pooled": improvement,
        "results": results,
    }
    DATAPLANE_JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {DATAPLANE_JSON_PATH}")
    return report


def check_dataplane(report: dict) -> None:
    """Assert the data-plane claims.

    Metering equality and the plane's structural wins (pooled reuse,
    fewer segment creations, zero-copy attach caching) hold on any host
    and are asserted unconditionally.  The host-seconds improvement —
    like the speedup assert in :func:`check_report` — is only asserted
    where the hardware makes it physically possible (>= 4 cores so the
    four workers actually overlap); single-core hosts record the number
    but every mode degenerates to time-sliced execution there.
    """
    by_mode = {r["mode"]: r for r in report["results"]}
    ref = by_mode["thread-reference"]
    metered = ("simulated_seconds", "comm_bytes", "disk_blocks",
               "output_rows")
    for r in report["results"]:
        for key in metered:
            assert r[key] == ref[key], (
                f"{key} diverges in mode {r['mode']}: "
                f"{r[key]} vs thread reference {ref[key]}"
            )
    base = by_mode.get("copy-unpooled")
    opt = by_mode.get("zero-copy-pooled")
    if not (base and opt):
        print("  process backend unavailable; thread reference only")
        return
    base_stats, opt_stats = base["shm_pool_stats"], opt["shm_pool_stats"]
    assert opt_stats["segments_reused"] > 0, "pool never reused a segment"
    assert opt_stats["attach_reuses"] > 0, "attach cache never hit"
    assert base_stats["segments_reused"] == 0, (
        "unpooled baseline must not reuse segments"
    )
    assert opt_stats["segments_created"] < base_stats["segments_created"], (
        "pooled plane should create far fewer segments than the "
        f"legacy baseline ({opt_stats['segments_created']} vs "
        f"{base_stats['segments_created']})"
    )
    improvement = report["host_improvement_zero_copy_pooled"]
    cores = report["cpu_count"] or 1
    if cores >= 4:
        assert improvement >= DATAPLANE_TARGET, (
            f"zero-copy pooled plane reached only {improvement:.2f}x over "
            f"the copy/unpooled baseline on a {cores}-core host "
            f"(target {DATAPLANE_TARGET}x)"
        )
    else:
        assert improvement >= 1.0, (
            f"zero-copy pooled plane is slower ({improvement:.2f}x) than "
            "the copy/unpooled baseline"
        )
        print(
            f"  host has {cores} core(s); >= 4 needed for the "
            f"{DATAPLANE_TARGET}x improvement assertion — recorded "
            f"{improvement:.2f}x"
        )


def test_backend_scaling():
    check_report(run_scaling())


def test_shm_dataplane():
    check_dataplane(run_dataplane())


if __name__ == "__main__":
    check_report(run_scaling())
    check_dataplane(run_dataplane())
    sys.exit(0)
