"""Availability benchmark of the serving tier under sustained worker loss.

The serving contract behind the ROADMAP's "heavy traffic" north star is
not just throughput — it is throughput *while the pool is being shot
at*.  This bench drives a seeded mixed workload through a
:class:`~repro.olap.service.QueryService` whose workers are SIGKILLed
on a sustained schedule (a ``kill@`` :class:`~repro.mpi.faults.\
ServeFaultPlan` fells every generation of every slot at its k-th
executed query — at the measured throughput that is roughly one worker
death per ~0.5 s across the pool), and scores:

* **availability** — the fraction of offered queries answered
  *correctly* (bit-identical to the inline
  :class:`~repro.olap.query.QueryEngine`) within their deadline; the
  run asserts ≥ {AVAILABILITY_TARGET:.0%};
* **p99 latency** — scheduled-arrival → completion, retries and
  respawn stalls included;
* **recovery** — worker deaths observed, replacements spawned, and the
  detection → replacement-ready time per restart;
* **hygiene** — zero result mismatches and zero leaked ``/dev/shm``
  segments after ``close()`` (both asserted).

A fault-free control rung runs first so the chaos overhead is visible.
Writes ``BENCH_serving_chaos.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_serving_chaos.py [--quick]``) or
under pytest.  Scale knobs: ``REPRO_BENCH_CHAOS_N`` (base-view rows,
default 300,000) and ``REPRO_BENCH_QUICK`` / ``--quick``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.mpi.faults import ServeFaultPlan
from repro.olap.query import QueryEngine
from repro.olap.servebench import (
    run_chaos,
    serving_workload,
    synthetic_serving_cube,
)
from repro.olap.service import QueryService, ServicePolicy
from repro.olap.store import CubeStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serving_chaos.json"

#: Required fraction of offered queries answered correctly in deadline.
AVAILABILITY_TARGET = 0.99
#: Pool size under fire.
WORKERS = 4
#: Each worker generation dies entering its KILL_EVERY-th query; at the
#: offered rate below that works out to roughly one death per ~0.5 s.
KILL_EVERY = 25
#: Per-query deadline — generous enough to absorb a detect + respawn +
#: retry cycle, tight enough that a stalled service scores zero.
DEADLINE_S = 10.0

CARDS = (128, 64, 32, 16)


def _quick() -> bool:
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def _leaked_segments(pids) -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return [
        name
        for name in os.listdir(shm_dir)
        for pid in pids
        if name.startswith(f"rp{pid}x")
    ]


def _policy(deadline_s: float) -> ServicePolicy:
    return ServicePolicy(
        heartbeat_interval=0.05,
        suspect_after=5.0,
        deadline_s=deadline_s,
        max_retries=4,
        backoff_base=0.02,
        max_queue_depth=100_000,  # availability run: shed nothing
        poison_threshold=8,  # random kills must not quarantine hot spots
        max_restarts=512,
    )


def run_rung(
    store_path: str,
    queries,
    expected,
    offered_qps: float,
    n_queries: int,
    serve_faults: ServeFaultPlan | None,
) -> dict:
    """One chaos rung: fresh service, seeded workload, scored drain."""
    service = QueryService(
        store_path,
        workers=WORKERS,
        byte_budget=None,  # cache off: every answer exercises the pool
        policy=_policy(DEADLINE_S),
        serve_faults=serve_faults,
    )
    try:
        rung = run_chaos(
            service, queries, expected, offered_qps, n_queries
        )
        stats = service.stats()
        pids = list(service._sup.all_pids)
    finally:
        service.close()
    rung["stats"] = {
        key: stats[key]
        for key in (
            "worker_deaths",
            "worker_hangs",
            "restarts",
            "retries",
            "executed",
            "timeouts",
            "corrupt_results",
        )
    }
    restart_log = service._sup.restart_log
    recovery_ms = [
        (entry["ready_at"] - entry["detected_at"]) * 1e3
        for entry in restart_log
    ]
    rung["recovery"] = {
        "restarts": len(restart_log),
        "respawn_ms_mean": (
            round(sum(recovery_ms) / len(recovery_ms), 2)
            if recovery_ms
            else None
        ),
        "respawn_ms_max": (
            round(max(recovery_ms), 2) if recovery_ms else None
        ),
    }
    kills = rung["stats"]["worker_deaths"] + rung["stats"]["worker_hangs"]
    rung["kill_interval_s"] = (
        round(rung["wall_seconds"] / kills, 3) if kills else None
    )
    rung["leaked_segments"] = _leaked_segments(pids)
    return rung


def main() -> dict:
    quick = _quick()
    n_rows = int(
        os.environ.get(
            "REPRO_BENCH_CHAOS_N", "60000" if quick else "300000"
        )
    )
    n_queries = 200 if quick else 600
    offered_qps = 100.0 if quick else 150.0
    print(
        f"serving chaos bench: {n_rows:,}-row cube, {WORKERS} workers, "
        f"{n_queries} queries at {offered_qps:g} QPS"
        + (" [quick]" if quick else "")
    )

    with tempfile.TemporaryDirectory() as tmpdir:
        t0 = time.perf_counter()
        cube = synthetic_serving_cube(n_rows, CARDS, p=4, seed=0xFa11)
        store_path = os.path.join(tmpdir, "chaos_cube")
        CubeStore.save(cube, store_path)
        handle = CubeStore.open(store_path)
        engine = QueryEngine(
            handle.cube, sorted_views=handle.sorted_views, index=True
        )
        queries = [
            q for _, q in serving_workload(CARDS, n=128, seed=0xFa11)
        ]
        expected = {q: engine.answer(q) for q in queries}
        print(
            f"  cube + inline oracle ready in "
            f"{time.perf_counter() - t0:.1f} s"
        )

        control = run_rung(
            store_path, queries, expected, offered_qps, n_queries, None
        )
        print(
            f"  control  availability {control['availability']:.4f}  "
            f"p99 {control['p99_ms']:.1f} ms"
        )

        # Sustained kills: every generation of every slot dies entering
        # its KILL_EVERY-th executed query.
        plan = ServeFaultPlan.parse(
            ";".join(f"kill@w{w}q{KILL_EVERY}" for w in range(WORKERS))
        )
        chaos = run_rung(
            store_path, queries, expected, offered_qps, n_queries, plan
        )
        print(
            f"  chaos    availability {chaos['availability']:.4f}  "
            f"p99 {chaos['p99_ms']:.1f} ms  "
            f"deaths {chaos['stats']['worker_deaths']} "
            f"(~1 per {chaos['kill_interval_s']} s)  "
            f"restarts {chaos['stats']['restarts']}  "
            f"retries {chaos['stats']['retries']}"
        )
        if chaos["recovery"]["respawn_ms_mean"] is not None:
            print(
                f"  recovery respawn mean "
                f"{chaos['recovery']['respawn_ms_mean']:.1f} ms  max "
                f"{chaos['recovery']['respawn_ms_max']:.1f} ms"
            )

    report = {
        "bench": "serving_chaos",
        "host": platform.node(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "quick": quick,
        "n_rows": n_rows,
        "workers": WORKERS,
        "offered_qps": offered_qps,
        "n_queries": n_queries,
        "kill_every": KILL_EVERY,
        "deadline_s": DEADLINE_S,
        "availability_target": AVAILABILITY_TARGET,
        "fault_plan": plan.describe(),
        "control": control,
        "chaos": chaos,
        "availability": chaos["availability"],
        "p99_ms": chaos["p99_ms"],
        "worker_restarts": chaos["stats"]["restarts"],
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")

    # The contract, asserted in every mode: answered results are
    # bit-identical, nothing leaks, chaos actually happened, and the
    # service stayed available through it.
    assert chaos["mismatched"] == 0, (
        f"{chaos['mismatched']} answered results diverged from the "
        "inline engine"
    )
    assert control["mismatched"] == 0
    assert chaos["leaked_segments"] == [], chaos["leaked_segments"]
    assert control["leaked_segments"] == []
    assert chaos["stats"]["worker_deaths"] >= 3, (
        "chaos rung killed too few workers to mean anything: "
        f"{chaos['stats']['worker_deaths']}"
    )
    assert chaos["stats"]["restarts"] >= chaos["stats"]["worker_deaths"] - 1
    assert chaos["availability"] >= AVAILABILITY_TARGET, (
        f"availability {chaos['availability']:.4f} < "
        f"{AVAILABILITY_TARGET}"
    )
    return report


def test_serving_chaos_bench():
    """Pytest entry point (quick mode handled via env)."""
    main()


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    main()
