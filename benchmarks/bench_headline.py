"""The abstract's headline claims, at reproduction scale."""

from conftest import record

from repro.bench.experiments import headline
from repro.bench.reporting import format_kv_block


def test_headline(benchmark, scale, results_dir):
    title, pairs, notes = benchmark.pedantic(
        headline, args=(scale,), rounds=1, iterations=1
    )
    text = format_kv_block(title, pairs) + f"\n  note: {notes}"
    record(results_dir, "headline", text)

    values = dict(pairs)
    speedup = float(values["relative speedup"])
    # "close to optimal speedup" at the paper's full scale; at reduced
    # scale the same algorithm must stay clearly super-sequential.
    assert speedup > 3.0
    out_ratio = float(values["output/input ratio (paper: ~113x at n=2M)"][:-1])
    assert out_ratio > 10.0  # the cube is much larger than its input
