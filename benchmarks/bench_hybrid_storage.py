"""Compressed hybrid storage: reordering + dense/sparse blocks (format 3).

Measures what the Kaser-Lemire attribute-value reorder plus the
per-block dense/sparse layout buy on Zipf-skewed data with scrambled
labels (the adversarial case: frequent values carry arbitrary codes, so
nothing clusters until the reorder runs).  Four lanes over one cube:

* **stores** — the same reordered cube saved as format 2 (sorted
  columns) and format 3 (hybrid blocks, ``block_cells=1024``), plus an
  *unreordered* format-3 store as the ablation control; records
  directory bytes, dense-block/sparse-row counts, and the compression
  ratios.  Gate (all modes): reordered format 3 is >= {RATIO_TARGET}x
  smaller on disk than format 2.
* **identity** — the in-memory cube, the format-2 load, and the
  format-3 load compared view by view (keys and measures bit-exact),
  and ``audit_cube`` totals checked against the raw relation.
* **queries** — a mixed workload answered through the reorder-aware
  engines of both stores, scan path and index/dense path: all four
  answer sets must be bit-identical (every mode).
* **latency** — p50 per access path on hot-corner point lookups
  (original-value filters that land in dense blocks after the
  reorder).  Gate (full mode): the format-3 dense path is no slower
  than the format-2 index path.

Writes ``BENCH_hybrid_storage.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_hybrid_storage.py [--quick]``)
or under pytest.  ``REPRO_BENCH_QUICK`` / ``--quick`` shrinks the
dataset; the latency gate is recorded but not asserted in quick mode.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.config import RunResult
from repro.core.audit import audit_cube
from repro.core.cube import CubeResult
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import all_views, canonical_view
from repro.data.generator import DatasetSpec, generate_dataset
from repro.olap.query import Query
from repro.olap.store import CubeStore
from repro.storage.reorder import reorder_relation
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.sortkernels import sort_pairs

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hybrid_storage.json"

#: Required on-disk ratio: format-2 bytes / reordered format-3 bytes.
RATIO_TARGET = 1.5
#: Grid granularity for every format-3 save in this bench.  Finer than
#: the 1024-cell default: these cardinality mixes give mid-lattice
#: views small capacities, and a finer grid follows their density
#: profile (dense head, sparse tail) more closely.
BLOCK_CELLS = 256

QUICK_CARDS = (24, 16, 10, 8)
QUICK_ALPHAS = (1.2, 0.9, 0.6, 0.3)
QUICK_N = 120_000
FULL_CARDS = (32, 16, 8, 8)
FULL_ALPHAS = (1.3, 1.0, 0.7, 0.4)
FULL_N = 300_000


def _quick() -> bool:
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def _dir_bytes(path: str) -> int:
    total = 0
    for root, _, files in os.walk(path):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


def cube_from_relation(rel, cards, p=2) -> CubeResult:
    """The full lattice by exact roll-up from the base view.

    Equivalent output to ``build_data_cube`` (sorted unique views,
    contiguous rank pieces) without simulating the parallel engine —
    this bench measures storage, not construction.
    """
    d = len(cards)
    base = tuple(range(d))
    codec = codec_for_order(base, cards)
    base_keys, base_measure = sort_pairs(
        codec.pack(rel.dims), rel.measure, key_bound=codec.capacity
    )
    base_keys, base_measure = aggregate_sorted_keys(
        base_keys, base_measure, "sum"
    )
    rank_views = [dict() for _ in range(p)]
    total_rows = 0
    views = [canonical_view(v) for v in all_views(d)]
    for view in views:
        if view == base:
            vkeys, vmeasure = base_keys, base_measure
        else:
            keys, _ = codec.remap(base_keys, base, view)
            g_codec = codec_for_order(view, cards)
            keys, measure = sort_pairs(
                keys, base_measure, key_bound=g_codec.capacity
            )
            vkeys, vmeasure = aggregate_sorted_keys(keys, measure, "sum")
        n = int(vkeys.shape[0])
        total_rows += n
        cuts = [round(rank * n / p) for rank in range(p + 1)]
        for rank in range(p):
            lo, hi = cuts[rank], cuts[rank + 1]
            rank_views[rank][view] = ViewData(
                view, vkeys[lo:hi], vmeasure[lo:hi]
            )
    metrics = RunResult(
        simulated_seconds=0.0,
        host_seconds=0.0,
        output_rows=total_rows,
        view_count=len(views),
        comm_bytes=0,
        disk_blocks=0,
    )
    return CubeResult(
        rank_views=rank_views,
        cardinalities=tuple(cards),
        metrics=metrics,
        agg="sum",
    )


def build_stores(tmpdir: str, cards, alphas, n_rows: int):
    """Lane 1: generate, reorder, build, save three ways."""
    t0 = time.perf_counter()
    rel = generate_dataset(
        DatasetSpec(
            n=n_rows,
            cardinalities=cards,
            alphas=alphas,
            seed=0xBEEF,
            scramble=True,
        )
    )
    gen_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reordered, vr = reorder_relation(rel, cards)
    reorder_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cube = cube_from_relation(reordered, cards)
    plain_cube = cube_from_relation(rel, cards)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    p2 = CubeStore.save(
        cube, os.path.join(tmpdir, "f2"), format=2, reorder=vr
    )
    p3 = CubeStore.save(
        cube,
        os.path.join(tmpdir, "f3"),
        format=3,
        reorder=vr,
        block_cells=BLOCK_CELLS,
    )
    # Ablation control: format 3 without the reorder.
    p3_plain = CubeStore.save(
        plain_cube,
        os.path.join(tmpdir, "f3_plain"),
        format=3,
        block_cells=BLOCK_CELLS,
    )
    save_s = time.perf_counter() - t0

    b2, b3, b3_plain = (
        _dir_bytes(p2), _dir_bytes(p3), _dir_bytes(p3_plain)
    )
    handle = CubeStore.open(p3)
    dense_blocks = sum(
        sv.n_dense_blocks for sv in handle.sorted_views.values()
    )
    dense_rows = sum(
        sv.n_dense_rows for sv in handle.sorted_views.values()
    )
    sparse_rows = sum(
        sv.n_sparse_rows for sv in handle.sorted_views.values()
    )
    lane = {
        "rows": n_rows,
        "cardinalities": list(cards),
        "alphas": list(alphas),
        "generate_s": round(gen_s, 3),
        "reorder_s": round(reorder_s, 3),
        "build_s": round(build_s, 3),
        "save_s": round(save_s, 3),
        "format2_bytes": b2,
        "format3_bytes": b3,
        "format3_unreordered_bytes": b3_plain,
        "compression_ratio": round(b2 / b3, 3),
        "reorder_gain": round(b3_plain / b3, 3),
        "dense_blocks": dense_blocks,
        "dense_rows": dense_rows,
        "sparse_rows": sparse_rows,
    }
    print(
        f"  stores     f2={b2:,}B f3={b3:,}B "
        f"(ratio {lane['compression_ratio']}x, unreordered f3 "
        f"{b3_plain:,}B) dense_blocks={dense_blocks} "
        f"sparse_rows={sparse_rows:,}"
    )
    return lane, rel, reordered, vr, cube, p2, p3


def check_identity(cube, rel_reordered, p2, p3) -> dict:
    """Lane 2: the three representations hold the same rows."""
    loads = {"format2": CubeStore.load(p2), "format3": CubeStore.load(p3)}
    identical = True
    for name, loaded in loads.items():
        for rank, rank_views in enumerate(cube.rank_views):
            for view, vd in rank_views.items():
                got = loaded.rank_views[rank][view]
                if not (
                    np.array_equal(got.keys, vd.keys)
                    and np.array_equal(got.measure, vd.measure)
                ):
                    identical = False
                    print(f"  identity   MISMATCH {name} {view} rank {rank}")
    report3 = audit_cube(loads["format3"], relation=rel_reordered)
    print(
        f"  identity   views bit-exact={identical} "
        f"audit_ok={report3.ok}"
    )
    return {
        "views_bit_identical": identical,
        "audit_ok": report3.ok,
        "audit_issues": report3.issues,
    }


def _workload(cards, rng, n=24):
    d = len(cards)
    queries = []
    for _ in range(n):
        group = tuple(
            sorted(
                rng.choice(d, size=int(rng.integers(0, 3)), replace=False)
            )
        )
        filters = {}
        for dim in range(d):
            if dim in group or rng.random() < 0.5:
                continue
            lo = int(rng.integers(0, cards[dim]))
            hi = int(rng.integers(lo, cards[dim]))
            filters[dim] = (lo, hi)
        queries.append(
            Query(group_by=tuple(int(g) for g in group), filters=filters)
        )
    return queries


def check_queries(cards, p2, p3, quick: bool) -> dict:
    """Lane 3: all four engine lanes answer bit-identically."""
    rng = np.random.default_rng(0xF00D)
    workload = _workload(cards, rng, n=12 if quick else 32)
    engines = {
        "f2_index": CubeStore.open(p2).query_engine(index=True),
        "f2_scan": CubeStore.open(p2).query_engine(index=False),
        "f3_index": CubeStore.open(p3).query_engine(index=True),
        "f3_scan": CubeStore.open(p3).query_engine(index=False),
    }
    identical = True
    for query in workload:
        answers = {k: e.answer(query) for k, e in engines.items()}
        ref = answers["f2_index"]
        for name, got in answers.items():
            if not (
                np.array_equal(ref.dims, got.dims)
                and np.array_equal(ref.measure, got.measure)
            ):
                identical = False
                print(f"  queries    MISMATCH {name}: {query}")
    print(
        f"  queries    {len(workload)} queries x 4 lanes "
        f"identical={identical}"
    )
    return {"queries": len(workload), "bit_identical": identical}


def measure_latency(cards, vr, p2, p3, quick: bool) -> dict:
    """Lane 4: p50 point-lookup latency per access path.

    Points are hot-corner originals — for each dimension one of the
    most frequent values (whose reordered codes are small), so the
    packed keys land in dense blocks of the format-3 base view.
    """
    rng = np.random.default_rng(0xCAFE)
    n_queries = 40 if quick else 200
    top_k = 4
    d = len(cards)
    queries = []
    for _ in range(n_queries):
        filters = {
            dim: (
                int(vr.inverse[dim][int(rng.integers(0, top_k))]),
            ) * 2
            for dim in range(d)
        }
        queries.append(Query(group_by=(), filters=filters))

    h2, h3 = CubeStore.open(p2), CubeStore.open(p3)
    lanes = {
        "f2_index": h2.query_engine(index=True),
        "f3_dense": h3.query_engine(index=True),
        "f2_scan": h2.query_engine(index=False),
    }
    dense_hits = 0
    explain = h3.query_engine(index=True)
    for query in queries:
        if explain.explain(query).access_path == "dense":
            dense_hits += 1

    p50 = {}
    for name, engine in lanes.items():
        for query in queries[:5]:
            engine.answer(query)  # warm
        best = np.full(len(queries), np.inf)
        for _ in range(3):
            for i, query in enumerate(queries):
                t0 = time.perf_counter()
                engine.answer(query)
                best[i] = min(
                    best[i], time.perf_counter() - t0
                )
        p50[name] = float(np.percentile(best, 50) * 1e6)

    speedup = p50["f2_index"] / max(p50["f3_dense"], 1e-9)
    lane = {
        "point_queries": n_queries,
        "dense_path_hits": dense_hits,
        "p50_us": {k: round(v, 1) for k, v in p50.items()},
        "dense_vs_index_speedup": round(speedup, 3),
    }
    print(
        f"  latency    p50 f3_dense={p50['f3_dense']:.0f}us "
        f"f2_index={p50['f2_index']:.0f}us "
        f"f2_scan={p50['f2_scan']:.0f}us "
        f"({speedup:.2f}x, {dense_hits}/{n_queries} dense-path)"
    )
    return lane


def run() -> dict:
    import tempfile

    quick = _quick()
    cards = QUICK_CARDS if quick else FULL_CARDS
    alphas = QUICK_ALPHAS if quick else FULL_ALPHAS
    n_rows = QUICK_N if quick else FULL_N

    with tempfile.TemporaryDirectory() as tmpdir:
        stores, rel, reordered, vr, cube, p2, p3 = build_stores(
            tmpdir, cards, alphas, n_rows
        )
        identity = check_identity(cube, reordered, p2, p3)
        queries = check_queries(cards, p2, p3, quick)
        latency = measure_latency(cards, vr, p2, p3, quick)

    report = {
        "bench": "hybrid_storage",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "targets": {
            "compression_ratio": RATIO_TARGET,
            "block_cells": BLOCK_CELLS,
        },
        "stores": stores,
        "identity": identity,
        "queries": queries,
        "latency": latency,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    """Assert the bench's claims.

    Compression and bit-identity gate in every mode; the dense-path
    latency comparison gates in full mode only (quick-mode stores are
    small enough that fixed per-query overhead dominates both paths).
    """
    stores = report["stores"]
    assert stores["compression_ratio"] >= RATIO_TARGET, (
        f"reordered format 3 is only {stores['compression_ratio']}x "
        f"smaller than format 2 (target {RATIO_TARGET}x)"
    )
    assert stores["dense_blocks"] > 0 and stores["sparse_rows"] > 0, (
        "the hybrid store must exercise both representations"
    )
    assert report["identity"]["views_bit_identical"], (
        "a loaded store diverged from the in-memory cube"
    )
    assert report["identity"]["audit_ok"], report["identity"][
        "audit_issues"
    ]
    assert report["queries"]["bit_identical"], (
        "engine lanes returned different answers"
    )
    assert report["latency"]["dense_path_hits"] > 0, (
        "no point query resolved via the dense path"
    )
    if report["quick"]:
        print("  quick mode: latency target recorded, not asserted")
        return
    p50 = report["latency"]["p50_us"]
    assert p50["f3_dense"] <= p50["f2_index"] * 1.05, (
        f"dense path p50 {p50['f3_dense']}us slower than format-2 "
        f"index path {p50['f2_index']}us"
    )


def test_bench_hybrid_storage():
    check_report(run())


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    check_report(run())
    sys.exit(0)
