"""Figure 6: partial-cube construction at 25/50/75/100% selected views."""

from conftest import record

from repro.bench.experiments import fig6_partial
from repro.bench.reporting import format_series_table


def test_fig6_partial(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig6_partial, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series) + f"\n  note: {notes}"
    record(results_dir, "fig06_partial", text)

    max_p = max(scale.processors)
    by_label = {s.label: s for s in series}

    def speed(label, p=max_p):
        return next(pt for pt in by_label[label].points if pt.x == p).speedup

    def secs(label, p=max_p):
        return next(pt for pt in by_label[label].points if pt.x == p).seconds

    # Shape 1: fewer selected views -> less absolute work.
    assert secs("25% selected") < secs("100% selected")

    # Shape 2: everything still parallelises (speedup > 1 at full size).
    for label in by_label:
        assert speed(label) > 1.0

    # Shape 3: the full cube's speedup is not beaten decisively by sparse
    # selections (the paper: speedup decreases somewhat as fewer views are
    # selected because per-partition local work shrinks).
    assert speed("100% selected") >= speed("25% selected") * 0.8
