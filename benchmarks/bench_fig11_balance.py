"""Figure 11: the balance-threshold (gamma) tradeoff."""

from conftest import record

from repro.bench.experiments import fig11_balance
from repro.bench.reporting import format_series_table


def test_fig11_balance(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig11_balance, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series) + f"\n  note: {notes}"
    record(results_dir, "fig11_balance", text)

    max_p = max(scale.processors)
    finals = {
        s.label: next(pt for pt in s.points if pt.x == max_p).seconds
        for s in series
    }

    # The paper's conclusion: the threshold matters little — all three
    # curves sit close together (tighter balance costs a bit more).
    lo, hi = min(finals.values()), max(finals.values())
    assert hi / lo < 1.35, finals

    # And parallelism survives every setting.
    for s in series:
        assert next(pt for pt in s.points if pt.x == max_p).speedup > 1.0
