"""Figure 11: the balance-threshold (gamma) tradeoff."""

import json
import pathlib

from conftest import record

from repro.bench.experiments import _p8, fig11_balance
from repro.bench.harness import dataset_for
from repro.bench.reporting import format_series_table
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube

HETERO_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hetero.json"


def _emit_rank_spread(scale) -> None:
    """Append the per-rank finish-time spread of a gamma=3% build at the
    sweep's largest width to ``BENCH_hetero.json`` (read-modify-write, so
    the hetero bench's own gates are untouched)."""
    spec = _p8(scale.n_base)
    data = dataset_for(spec)
    p = max(scale.processors)
    metrics = build_data_cube(
        data,
        spec.cardinalities,
        MachineSpec(p=p, compute_scale=0.0),
        CubeConfig(),
    ).metrics
    busy = metrics.rank_busy_seconds
    spread = {
        "p": p,
        "n": spec.n,
        "rank_busy_seconds": [round(b, 6) for b in busy],
        "spread_max_minus_min": round(max(busy) - min(busy), 6),
        "spread_relative": round(
            (max(busy) - min(busy)) / (sum(busy) / len(busy)), 6
        )
        if any(busy)
        else 0.0,
    }
    report = (
        json.loads(HETERO_JSON.read_text()) if HETERO_JSON.exists() else {}
    )
    report["fig11_rank_spread"] = spread
    HETERO_JSON.write_text(json.dumps(report, indent=2) + "\n")


def test_fig11_balance(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig11_balance, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series) + f"\n  note: {notes}"
    record(results_dir, "fig11_balance", text)
    _emit_rank_spread(scale)

    max_p = max(scale.processors)
    finals = {
        s.label: next(pt for pt in s.points if pt.x == max_p).seconds
        for s in series
    }

    # The paper's conclusion: the threshold matters little — all three
    # curves sit close together (tighter balance costs a bit more).
    lo, hi = min(finals.values()), max(finals.values())
    assert hi / lo < 1.35, finals

    # And parallelism survives every setting.
    for s in series:
        assert next(pt for pt in s.points if pt.x == max_p).speedup > 1.0
