"""A/B benchmark of the packed-key sort kernels against the argsort baseline.

Two micro-benches isolate the kernels on the workloads they were built
for — ``radix`` on a large uniform-key sort, ``segmented`` on a
shared-prefix re-sort (sorted source keys remapped to a target order
sharing a 2-dim prefix) — and one end-to-end check builds the same cube
under every forced kernel and asserts bit-identical views **and**
identical simulated metering (the kernels may only change host time).

Writes ``BENCH_sort_kernels.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_sort_kernels.py``) or under
pytest.  Scale knobs: ``REPRO_BENCH_SORT_N`` (micro-bench rows, default
1,500,000), ``REPRO_BENCH_ROUNDS`` (best-of rounds, default 3) and
``REPRO_BENCH_QUICK`` (any non-empty value: shrink the micro-benches
and skip the speedup assertions — the CI smoke mode, which still
asserts cross-kernel cube equality).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.data.generator import generate_dataset, paper_preset
from repro.storage.sortkernels import (
    ENV_KERNEL,
    calibration,
    set_default_kernel,
    sort_pairs,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sort_kernels.json"

#: Host-seconds ratio (argsort / kernel) each specialised kernel must
#: reach on its home workload in full (non-quick) mode.
RADIX_TARGET = 1.2
SEGMENTED_TARGET = 1.3

#: Kernels forced end-to-end through a full cube build.
CUBE_KERNELS = ("auto", "argsort", "radix", "segmented", "presorted")


def _quick() -> bool:
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def _neutralise_forcing() -> None:
    """This bench A/Bs kernels against each other; a forced kernel (CI
    matrix env var or a leftover process default) would silently make
    every lane run the same code."""
    os.environ.pop(ENV_KERNEL, None)
    set_default_kernel("auto")


def _best(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _ab(keys, values, kernel: str, rounds: int, **hints) -> dict:
    """Time ``kernel`` vs the argsort baseline on one workload; verify
    bit-identical output while at it."""
    base_k, base_v = sort_pairs(keys, values, "argsort")
    got_k, got_v = sort_pairs(keys, values, kernel, **hints)
    assert np.array_equal(got_k, base_k) and np.array_equal(got_v, base_v), (
        f"{kernel} output diverges from argsort"
    )
    t_arg = _best(lambda: sort_pairs(keys, values, "argsort"), rounds)
    t_ker = _best(lambda: sort_pairs(keys, values, kernel, **hints), rounds)
    return {
        "kernel": kernel,
        "rows": int(keys.shape[0]),
        "argsort_seconds": round(t_arg, 4),
        "kernel_seconds": round(t_ker, 4),
        "speedup": round(t_arg / max(t_ker, 1e-9), 3),
        "bit_identical": True,
    }


def run_micro(n: int | None = None, rounds: int | None = None) -> dict:
    """The two micro A/Bs; returns their result dicts."""
    _neutralise_forcing()
    n = n or int(os.environ.get(
        "REPRO_BENCH_SORT_N", 200_000 if _quick() else 1_500_000
    ))
    rounds = rounds or int(os.environ.get("REPRO_BENCH_ROUNDS", 5))
    rng = np.random.default_rng(0x5017)

    # Radix home turf: large uniform draw from a 2^33 key space (the
    # paper's 256·128·…·6 preset capacity).
    key_space = 1 << 33
    keys = rng.integers(0, key_space, n, dtype=np.int64)
    values = rng.random(n)
    radix = _ab(keys, values, "radix", rounds, key_bound=key_space)
    print(
        f"  radix      n={n:>9,}  argsort {radix['argsort_seconds']:7.3f} s"
        f"  radix {radix['kernel_seconds']:7.3f} s"
        f"  -> {radix['speedup']:.2f}x"
    )

    # Segmented home turf: a shared-prefix re-sort.  Source rows sorted
    # under the old order stay clustered by the shared prefix after the
    # remap; only the suffix within each of the prefix's segments needs
    # sorting.  Few large segments with a narrow suffix keep the
    # composite ``segment·W + suffix`` within one 16-bit digit pass —
    # the regime where the prefix discount is steepest.  (Timsort's
    # galloping merges already near-linearise many-small-segment inputs,
    # so argsort is a strong baseline on this workload either way.)
    suffix_cap = 1 << 12
    nseg = 1 << 4
    prefixes = np.sort(rng.integers(0, 1 << 30, nseg, dtype=np.int64))
    seg_of_row = np.sort(rng.integers(0, nseg, n, dtype=np.int64))
    seg_keys = prefixes[seg_of_row] * suffix_cap + rng.integers(
        0, suffix_cap, n, dtype=np.int64
    )
    segmented = _ab(
        seg_keys, values, "segmented", rounds, seg_divisor=suffix_cap
    )
    segmented["segments"] = nseg
    print(
        f"  segmented  n={n:>9,}  argsort "
        f"{segmented['argsort_seconds']:7.3f} s"
        f"  segmented {segmented['kernel_seconds']:7.3f} s"
        f"  -> {segmented['speedup']:.2f}x"
    )
    return {"radix": radix, "segmented": segmented}


def run_cube_equality(n: int | None = None) -> dict:
    """Build one cube per forced kernel; every build must be bit-identical
    to the auto build — views, simulated clock, traffic and disk blocks."""
    _neutralise_forcing()
    n = n or int(os.environ.get("REPRO_BENCH_CUBE_N", 6_000))
    spec_ds = paper_preset(n, seed=3)
    data = generate_dataset(spec_ds)
    builds = {}
    results = []
    for kernel in CUBE_KERNELS:
        machine = MachineSpec(p=4, compute_scale=0.0, sort_kernel=kernel)
        t0 = time.perf_counter()
        cube = build_data_cube(data, spec_ds.cardinalities, machine)
        host = time.perf_counter() - t0
        builds[kernel] = cube
        m = cube.metrics
        results.append(
            {
                "kernel": kernel,
                "host_seconds": round(host, 4),
                "simulated_seconds": m.simulated_seconds,
                "comm_bytes": m.comm_bytes,
                "disk_blocks": m.disk_blocks,
                "output_rows": m.output_rows,
            }
        )
        print(
            f"  cube[{kernel:9s}]  host {host:6.2f} s   "
            f"sim {m.simulated_seconds:8.4f} s   rows {m.output_rows:,}"
        )
    ref = builds["auto"]
    for kernel, cube in builds.items():
        for rank_ref, rank_got in zip(ref.rank_views, cube.rank_views):
            assert rank_ref.keys() == rank_got.keys()
            for view in rank_ref:
                assert np.array_equal(
                    rank_ref[view].keys, rank_got[view].keys
                ) and np.array_equal(
                    rank_ref[view].measure, rank_got[view].measure
                ), f"kernel {kernel} changed view {view}"
    metered = ("simulated_seconds", "comm_bytes", "disk_blocks",
               "output_rows")
    base = results[0]
    for r in results[1:]:
        for key in metered:
            assert r[key] == base[key], (
                f"{key} diverges under kernel {r['kernel']}: "
                f"{r[key]} vs {base[key]}"
            )
    return {"n": n, "kernels": list(CUBE_KERNELS), "results": results,
            "bit_identical": True}


def run() -> dict:
    micro = run_micro()
    cube = run_cube_equality()
    cal = calibration()
    report = {
        "bench": "sort_kernels",
        "quick": _quick(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "calibration": {
            "argsort_sec_per_row_level": cal.argsort_sec_per_row_level,
            "radix_sec_per_row_pass": cal.radix_sec_per_row_pass,
            "radix_pass_overhead_sec": cal.radix_pass_overhead_sec,
        },
        "targets": {"radix": RADIX_TARGET, "segmented": SEGMENTED_TARGET},
        "micro": micro,
        "cube_equality": cube,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    """Assert the bench's claims.

    Bit-identical outputs are asserted unconditionally (they were checked
    during the runs; re-checked here from the record).  The speedup
    targets are full-mode only: quick mode shrinks the inputs below the
    regime the kernels are for (the cost model itself would pick argsort
    there), so CI records the numbers without gating on them.
    """
    assert report["cube_equality"]["bit_identical"]
    for lane in ("radix", "segmented"):
        assert report["micro"][lane]["bit_identical"]
    if report["quick"]:
        print("  quick mode: speedup targets recorded, not asserted")
        return
    radix = report["micro"]["radix"]
    assert radix["speedup"] >= RADIX_TARGET, (
        f"radix reached only {radix['speedup']:.2f}x over argsort on "
        f"{radix['rows']:,} uniform keys (target {RADIX_TARGET}x)"
    )
    segmented = report["micro"]["segmented"]
    assert segmented["speedup"] >= SEGMENTED_TARGET, (
        f"segmented reached only {segmented['speedup']:.2f}x over argsort "
        f"on a shared-prefix re-sort of {segmented['rows']:,} rows "
        f"(target {SEGMENTED_TARGET}x)"
    )


def test_sort_kernels():
    check_report(run())


if __name__ == "__main__":
    check_report(run())
    sys.exit(0)
