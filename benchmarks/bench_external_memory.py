"""Beyond the paper's figures: the external-memory regime.

The paper's nodes have 512 MB of RAM against a 72-360 MB input; its cost
analysis is written in the Vitter I/O model precisely because larger
warehouses spill.  This bench shrinks the per-node memory budget until
sorts go external and measures what the paper's analysis predicts:

* block transfers grow by one read+write of the data per extra merge
  pass (``O((n/B)·log_{m/B}(n/B))``),
* data partitioning (p-way splitting) pulls per-node working sets back
  under the memory budget — a 16-node cluster keeps sorting in memory
  long after the sequential machine has spilled.
"""

from conftest import record

from repro.bench.harness import dataset_for
from repro.bench.reporting import format_kv_block
from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.baselines.sequential import sequential_cube
from repro.data.generator import paper_preset


def test_external_memory_regime(benchmark, scale, results_dir):
    def run():
        spec = paper_preset(scale.n_base, seed=11)
        data = dataset_for(spec)
        p = max(scale.processors)
        # memory budget of half the input rows: the sequential machine
        # must run external sorts, each cluster node stays in memory.
        budget = max(512, scale.n_base // 2)
        roomy = MachineSpec(p=1, memory_budget=1 << 21)
        tight = MachineSpec(p=1, memory_budget=budget, block_size=256)
        tight_par = MachineSpec(p=p, memory_budget=budget, block_size=256)

        seq_roomy = sequential_cube(data, spec.cardinalities, roomy)
        seq_tight = sequential_cube(data, spec.cardinalities, tight)
        par_tight = build_data_cube(data, spec.cardinalities, tight_par)
        return seq_roomy.metrics, seq_tight.metrics, par_tight.metrics, p

    seq_roomy, seq_tight, par_tight, p = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    pairs = [
        ("sequential, memory-resident", f"{seq_roomy.simulated_seconds:.1f} s"
         f"  ({seq_roomy.disk_blocks:,} blocks)"),
        ("sequential, constrained memory", f"{seq_tight.simulated_seconds:.1f} s"
         f"  ({seq_tight.disk_blocks:,} blocks)"),
        (f"parallel p={p}, constrained memory",
         f"{par_tight.simulated_seconds:.1f} s"
         f"  ({par_tight.disk_blocks:,} blocks)"),
        ("spill penalty (sequential)",
         f"{seq_tight.simulated_seconds / seq_roomy.simulated_seconds:.2f}x"),
        ("parallel speedup in the spill regime",
         f"{seq_tight.simulated_seconds / par_tight.simulated_seconds:.2f}x"),
    ]
    record(
        results_dir,
        "external_memory",
        format_kv_block("External-memory regime (constrained budgets)", pairs),
    )

    # Spilling must cost real block traffic...
    assert seq_tight.disk_blocks > seq_roomy.disk_blocks * 1.5
    assert seq_tight.simulated_seconds > seq_roomy.simulated_seconds
    # ...and partitioning must claw the loss back (memory-fit is a real
    # benefit of shared-nothing scale-out).
    assert (
        seq_tight.simulated_seconds / par_tight.simulated_seconds
        > seq_tight.simulated_seconds / seq_roomy.simulated_seconds
    )
