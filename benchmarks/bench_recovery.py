"""Recovery overhead of the fault-injection + checkpoint machinery.

For each cluster size ``p`` in the sweep this bench builds the same cube
four ways:

* fault-free (the baseline),
* fault-free with per-iteration checkpoints (the insurance premium),
* a mid-build rank crash recovered by restarting from scratch,
* the same crash recovered by resuming from the last checkpoint.

All runs use ``compute_scale=0.0`` so the simulated clock is
deterministic and the overhead ratios are exact.  The report asserts the
recovery contract — every recovered cube matches the fault-free row
count, recovery always costs simulated time, a from-scratch retry costs
exactly one fault-free build, and a checkpointed retry costs *less* than
a full checkpointed build (it skips the iterations the checkpoint
already holds; the premium is the steady-state checkpoint I/O).

Writes ``BENCH_recovery.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_recovery.py``) or under pytest.
Scale knobs: ``REPRO_BENCH_N`` (rows, default 8,000) and
``REPRO_BENCH_MAXP`` (largest p, default 8 -> sweep (2, 4, 8)).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.config import MachineSpec, RecoveryPolicy
from repro.core.cube import build_data_cube
from repro.data.generator import generate_dataset, paper_preset
from repro.mpi.faults import FaultPlan

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_recovery.json"

#: The injected failure: rank 1 dies entering its 25th collective —
#: far enough in that at least one dimension iteration has completed,
#: so a checkpointed retry has something to resume from.
CRASH = "crash@r1s25"


def _one(data, cards, p, faults=None, ckpt=None) -> dict:
    machine = MachineSpec(p=p, backend="thread", compute_scale=0.0)
    recovery = RecoveryPolicy(max_retries=2) if faults else None
    t0 = time.perf_counter()
    cube = build_data_cube(
        data,
        cards,
        machine,
        faults=FaultPlan.parse(faults) if faults else None,
        checkpoint_dir=ckpt,
        recovery=recovery,
    )
    host = time.perf_counter() - t0
    m = cube.metrics
    return {
        "simulated_seconds": m.simulated_seconds,
        "recovered_seconds": m.recovered_seconds,
        "attempts": m.attempts,
        "comm_bytes": m.comm_bytes,
        "disk_blocks": m.disk_blocks,
        "output_rows": m.output_rows,
        "host_seconds": round(host, 4),
    }


def run_recovery(n: int | None = None, processors=None) -> dict:
    n = n or int(os.environ.get("REPRO_BENCH_N", 8_000))
    if processors is None:
        max_p = int(os.environ.get("REPRO_BENCH_MAXP", 8))
        processors = tuple(p for p in (2, 4, 8) if p <= max_p) or (2,)
    spec_ds = paper_preset(n, seed=3)
    data = generate_dataset(spec_ds)
    cards = spec_ds.cardinalities
    results = []
    for p in processors:
        row: dict = {"p": p}
        row["fault_free"] = _one(data, cards, p)
        with tempfile.TemporaryDirectory() as ck:
            row["checkpointed"] = _one(data, cards, p, ckpt=ck)
        row["crash_restart"] = _one(data, cards, p, faults=CRASH)
        with tempfile.TemporaryDirectory() as ck:
            row["crash_resume"] = _one(data, cards, p, faults=CRASH, ckpt=ck)
        base = row["fault_free"]["simulated_seconds"]
        row["overhead"] = {
            variant: round(row[variant]["simulated_seconds"] / base, 4)
            for variant in ("checkpointed", "crash_restart", "crash_resume")
        }
        results.append(row)
        print(
            f"  p={p}  fault-free {base:8.3f} s   "
            + "   ".join(
                f"{k} x{v:.3f}" for k, v in row["overhead"].items()
            )
        )
    report = {
        "bench": "recovery",
        "n": n,
        "processors": list(processors),
        "crash": CRASH,
        "python": platform.python_version(),
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    for row in report["results"]:
        base = row["fault_free"]
        for variant in ("checkpointed", "crash_restart", "crash_resume"):
            run = row[variant]
            assert run["output_rows"] == base["output_rows"], (
                f"p={row['p']} {variant}: cube size changed "
                f"({run['output_rows']} vs {base['output_rows']})"
            )
        # A recovered crash costs time, honestly accounted.
        for variant in ("crash_restart", "crash_resume"):
            assert row[variant]["attempts"] == 2
            assert row[variant]["recovered_seconds"] > 0
            assert (
                row[variant]["simulated_seconds"]
                > base["simulated_seconds"]
            )
        # Restart-from-scratch redoes the whole build: its final attempt
        # costs exactly one fault-free build.
        restart_final = (
            row["crash_restart"]["simulated_seconds"]
            - row["crash_restart"]["recovered_seconds"]
        )
        assert abs(restart_final - base["simulated_seconds"]) < 1e-6, (
            f"p={row['p']}: restarted attempt cost {restart_final}, "
            f"expected the fault-free {base['simulated_seconds']}"
        )
        # Resuming skips the iterations the checkpoint already holds:
        # the final attempt is cheaper than a full checkpointed build.
        resume_final = (
            row["crash_resume"]["simulated_seconds"]
            - row["crash_resume"]["recovered_seconds"]
        )
        assert (
            resume_final < row["checkpointed"]["simulated_seconds"]
        ), f"p={row['p']}: resumed attempt did not skip any work"


def test_recovery_overhead():
    check_report(run_recovery())


if __name__ == "__main__":
    check_report(run_recovery())
    sys.exit(0)
