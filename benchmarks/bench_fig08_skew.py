"""Figure 8: effect of Zipf skew on wall clock and communicated bytes."""

from conftest import record

from repro.bench.experiments import fig8_skew
from repro.bench.reporting import format_series_table


def test_fig8_skew(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig8_skew, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(
        title, series, show_speedup=False, show_comm=True
    ) + f"\n  note: {notes}"
    record(results_dir, "fig08_skew", text)

    (s,) = series
    by_alpha = {pt.x: pt for pt in s.points}

    # Shape 1: the communication spike sits at moderate skew and collapses
    # for high skew (paper: sharp rise at alpha=1, tiny beyond).
    peak_alpha = max(by_alpha, key=lambda a: by_alpha[a].comm_mb)
    assert 0.5 <= peak_alpha <= 1.5
    assert by_alpha[3.0].comm_mb < by_alpha[peak_alpha].comm_mb

    # Shape 2: high skew ends up at least as fast as no skew (data
    # reduction shrinks local computation).
    assert by_alpha[3.0].seconds <= by_alpha[0.0].seconds * 1.1

    # Shape 3: data reduction is real — output shrinks with skew.
    assert (
        by_alpha[3.0].extra["output_rows"]
        < by_alpha[0.0].extra["output_rows"]
    )
