"""Heterogeneity-aware partitioning and speculative straggler races.

Two questions, one report:

* **Does speed-proportional partitioning pay on a skewed cluster?**
  With rank 0 running at half speed (``slow@r0x2``), a uniform
  sample-sort keys every superstep to the slow rank's critical path.
  The hetero build meters per-rank throughput during sampling, sizes
  each rank's h-relation share to its measured speed (clamped to
  ``[1/2p, 2/p]``), and must finish at least **1.3x** faster than the
  uniform build under the same fault.  On a *homogeneous* cluster the
  same machinery must cost at most **1.05x** (the profiler's extra
  allgather and near-uniform shares are noise).

* **Is a speculative straggler race safe?**  A hung rank triggers a
  race between a full-width retry and a width-(p-1) clone of the
  straggler's checkpoints; the winning cube must be bit-identical to a
  clean build, pass the audit, and bank both raced attempts' costs.

All runs use ``compute_scale=0.0`` so the simulated clock is
deterministic (segments are the modelled per-row sort/scan work plus
block I/O, which the slow fault inflates multiplicatively).  The
machine uses a 64-row block at the same per-row disk cost as the
default 1024-row block: at bench scale a uniform partition is only
1-2 default blocks, so any share skew would be dominated by block
ceil-quantisation instead of the work it models.  Measures are floored
to integers so regrouped rows aggregate bit-identically regardless of
partition boundaries (float summation order would otherwise differ
between layouts).  Writes
``BENCH_hetero.json`` at the repository root; ``bench_fig11_balance``
appends its per-rank finish-time spread to the same file.  Runnable
standalone (``python benchmarks/bench_hetero.py``) or under pytest.
Scale knobs: ``REPRO_BENCH_N`` (rows, default 8,000) and
``REPRO_BENCH_P`` (cluster width, default 4).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

from repro.config import CubeConfig, MachineSpec, RecoveryPolicy
from repro.core.cube import build_data_cube
from repro.data.generator import generate_dataset, paper_preset
from repro.mpi.faults import FaultPlan
from repro.storage.table import Relation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hetero.json"

#: Rank 0 at half speed for the whole build -- the paper's shared-nothing
#: cost model with one degraded node.
SLOW = "slow@r0x2"
#: Rank 1 hangs at its 20th collective on the first attempt only (the
#: straggler recovers by the time the race's full-width retry runs).
HANG = "hang@r1s20a0"

SPEEDUP_GATE = 1.3
OVERHEAD_GATE = 1.05


def _fingerprint(cube) -> str:
    """Digest of the cube's global content, independent of sharding."""
    h = hashlib.sha256()
    for view in cube.views:
        rel = cube.view_relation(view)
        if rel.nrows and rel.width:
            order = np.lexsort(
                tuple(rel.dims[:, j] for j in range(rel.width - 1, -1, -1))
            )
        else:
            order = np.arange(rel.nrows)
        h.update(repr(view).encode())
        h.update(np.ascontiguousarray(rel.dims[order]).tobytes())
        h.update(np.ascontiguousarray(rel.measure[order]).tobytes())
    return h.hexdigest()


def _one(
    data,
    cards,
    p,
    hetero=False,
    faults=None,
    ckpt=None,
    speculate=False,
) -> dict:
    machine = MachineSpec(
        p=p,
        backend="thread",
        compute_scale=0.0,
        block_size=64,
        disk_sec_per_block=1.4e-3 * 64 / 1024,
    )
    recovery = None
    if speculate:
        recovery = RecoveryPolicy(speculate=True)
    t0 = time.perf_counter()
    cube = build_data_cube(
        data,
        cards,
        machine,
        CubeConfig(hetero=hetero, incremental_roots=True),
        faults=FaultPlan.parse(faults) if faults else None,
        checkpoint_dir=ckpt,
        recovery=recovery,
        audit=True,
    )
    host = time.perf_counter() - t0
    m = cube.metrics
    return {
        "simulated_seconds": m.simulated_seconds,
        "recovered_seconds": m.recovered_seconds,
        "attempts": m.attempts,
        "final_width": m.final_width,
        "speculations": m.speculations,
        "speculation_discards": m.speculation_discards,
        "speed_model": m.speed_model,
        "rank_busy_seconds": [round(b, 6) for b in m.rank_busy_seconds],
        "audit_ok": bool(m.audit and m.audit["ok"]),
        "comm_bytes": m.comm_bytes,
        "output_rows": m.output_rows,
        "fingerprint": _fingerprint(cube),
        "host_seconds": round(host, 4),
    }


def run_hetero(n: int | None = None, p: int | None = None) -> dict:
    n = n or int(os.environ.get("REPRO_BENCH_N", 8_000))
    p = p or int(os.environ.get("REPRO_BENCH_P", 4))
    spec_ds = paper_preset(n, seed=3)
    raw = generate_dataset(spec_ds)
    data = Relation(raw.dims, np.floor(raw.measure))
    cards = spec_ds.cardinalities

    row: dict = {"p": p}
    row["uniform_clean"] = _one(data, cards, p)
    row["hetero_clean"] = _one(data, cards, p, hetero=True)
    row["uniform_slow"] = _one(data, cards, p, faults=SLOW)
    row["hetero_slow"] = _one(data, cards, p, hetero=True, faults=SLOW)
    with tempfile.TemporaryDirectory() as ck:
        row["speculative_race"] = _one(
            data, cards, p, hetero=True, faults=HANG, ckpt=ck,
            speculate=True,
        )
    row["slow_speedup"] = round(
        row["uniform_slow"]["simulated_seconds"]
        / row["hetero_slow"]["simulated_seconds"],
        4,
    )
    row["clean_overhead"] = round(
        row["hetero_clean"]["simulated_seconds"]
        / row["uniform_clean"]["simulated_seconds"],
        4,
    )
    print(
        f"  p={p}  slow speedup x{row['slow_speedup']:.3f} "
        f"(gate >= {SPEEDUP_GATE})   clean overhead "
        f"x{row['clean_overhead']:.3f} (gate <= {OVERHEAD_GATE})"
    )
    race = row["speculative_race"]
    print(
        f"  race: attempts={race['attempts']} "
        f"speculations={race['speculations']} "
        f"discards={race['speculation_discards']}"
    )
    report = {
        "bench": "hetero",
        "n": n,
        "p": p,
        "slow": SLOW,
        "hang": HANG,
        "speedup_gate": SPEEDUP_GATE,
        "overhead_gate": OVERHEAD_GATE,
        "python": platform.python_version(),
        "results": [row],
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    for row in report["results"]:
        clean = row["uniform_clean"]
        for variant in (
            "hetero_clean", "uniform_slow", "hetero_slow",
            "speculative_race",
        ):
            run = row[variant]
            assert run["audit_ok"], f"{variant}: audit failed"
            assert run["output_rows"] == clean["output_rows"], (
                f"{variant}: cube size changed "
                f"({run['output_rows']} vs {clean['output_rows']})"
            )
            assert run["fingerprint"] == clean["fingerprint"], (
                f"{variant}: cube content diverged from the clean build"
            )
        # Gate 1: speed-proportional shares beat uniform shares on the
        # skewed cluster by the required margin.
        assert row["slow_speedup"] >= SPEEDUP_GATE, (
            f"hetero speedup under {report['slow']} is "
            f"x{row['slow_speedup']}, gate is x{SPEEDUP_GATE}"
        )
        # Gate 2: the profiler is free on a homogeneous cluster.
        assert row["clean_overhead"] <= OVERHEAD_GATE, (
            f"hetero overhead on a homogeneous cluster is "
            f"x{row['clean_overhead']}, gate is x{OVERHEAD_GATE}"
        )
        # The hetero build actually measured the skew: the slow rank's
        # modelled speed must sit below every healthy rank's.
        model = row["hetero_slow"]["speed_model"]
        assert model is not None, "hetero_slow: no speed model published"
        speeds = model["speeds"]
        assert speeds[0] < min(speeds[1:]), (
            f"slow rank not detected: speeds {speeds}"
        )
        # Gate 3: the speculative race kept the recovered straggler,
        # discarded the duplicate exactly once, and banked both raced
        # attempts (recovered_seconds covers the hung attempt plus the
        # cancelled loser).
        race = row["speculative_race"]
        assert race["speculations"] == 1, race
        assert race["speculation_discards"] == 1, race
        assert race["attempts"] == 3, race
        assert race["final_width"] == row["p"], race
        assert race["recovered_seconds"] > 0, race


def test_hetero_speedup():
    check_report(run_hetero())


if __name__ == "__main__":
    check_report(run_hetero())
    sys.exit(0)
