"""Figure 7: global vs local schedule trees."""

from conftest import record

from repro.bench.experiments import fig7_schedule_trees
from repro.bench.reporting import format_series_table


def test_fig7_schedule_trees(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig7_schedule_trees, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series) + f"\n  note: {notes}"
    record(results_dir, "fig07_schedule_trees", text)

    global_s, local_s = series
    max_p = max(scale.processors)

    def at(s, p):
        return next(pt for pt in s.points if pt.x == p)

    # The paper's conclusion: the global tree is faster once several ranks
    # must merge (local trees pay per-view re-sorts into a common order).
    if max_p >= 4:
        assert at(global_s, max_p).seconds <= at(local_s, max_p).seconds
    benchmark.extra_info["local_over_global"] = (
        at(local_s, max_p).seconds / at(global_s, max_p).seconds
    )
