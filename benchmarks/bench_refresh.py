"""Incremental store refresh vs. full rebuild (delta-merge generations).

Measures what :func:`repro.olap.refresh.refresh_store` buys over
rebuilding the cube from scratch when a small insert-only delta
arrives, and that the savings cost nothing in correctness or serving
availability.  Four lanes:

* **timing** — a format-2 store refreshed with delta fractions of
  {FRACTIONS}: wall-clock ``refresh_store`` (delta build + merge +
  publish) vs. ``build_data_cube`` + save of base+delta, each refresh
  against a fresh hard-linked copy of the base store.  Gate: at every
  fraction <= 5% the refresh is >= {SPEEDUP_TARGET_FULL}x faster than
  the rebuild ({SPEEDUP_TARGET_QUICK}x in quick mode, where fixed
  per-view overhead dominates the small stores).
* **identity** — formats 2 and 3 refreshed at a 5% delta and compared
  against the from-scratch rebuild of the same rows: every query of a
  mixed workload must be **bit-identical** through both the scan path
  and the index/dense path (integer-valued measures keep float SUMs
  exact), and ``audit_cube`` must pass against the full relation.
* **promotion** — a format-3 store hit with a hot, concentrated delta:
  blocks must cross the density threshold and be re-promoted to dense,
  and the result must still match the rebuild.
* **serving** — a :class:`~repro.olap.service.QueryService` kept under
  closed-loop load while delta batches are folded in live
  (:func:`~repro.olap.servebench.run_with_refresh`).  Gates:
  availability >= {AVAILABILITY_TARGET} (no query blocked on a
  refresh), the store generation advances once per batch, and the
  staleness probe — cached before the first refresh, re-asked after
  the last — returns the *new* answer (no stale cache hit across the
  generation bump).

Writes ``BENCH_refresh.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_refresh.py [--quick]``) or under
pytest.  ``REPRO_BENCH_QUICK`` / ``--quick`` shrinks the dataset and
relaxes the timing gate.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import shutil
import sys
import time

import numpy as np

from repro.config import MachineSpec
from repro.core.audit import audit_cube
from repro.core.cube import build_data_cube
from repro.olap.query import Query
from repro.olap.refresh import refresh_store
from repro.olap.store import CubeStore
from repro.storage.table import Relation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_refresh.json"

SPEEDUP_TARGET_FULL = 5.0
SPEEDUP_TARGET_QUICK = 2.0
AVAILABILITY_TARGET = 0.99

CARDS = (20, 16, 12, 8)
FULL_N = 2_000_000
QUICK_N = 600_000
FRACTIONS_FULL = (0.001, 0.01, 0.05, 0.2)
FRACTIONS_QUICK = (0.01, 0.05)
P = 4

QUERIES = [
    Query(group_by=()),
    Query(group_by=(0,)),
    Query(group_by=(1, 3)),
    Query(group_by=(0, 1), filters={0: (2, 19)}),
    Query(group_by=(2,), filters={0: (5, 5)}),
]


def _quick() -> bool:
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def int_relation(n: int, cards=CARDS, seed: int = 0) -> Relation:
    """Integer-valued float64 measures keep every SUM exact (< 2^53),
    so refresh-vs-rebuild comparisons can demand bit-identity."""
    rng = np.random.default_rng(seed)
    dims = np.column_stack(
        [rng.integers(0, c, size=n, dtype=np.int64) for c in cards]
    )
    measure = rng.integers(1, 100, size=n).astype(np.float64)
    return Relation(dims, measure)


def concat(a: Relation, b: Relation) -> Relation:
    return Relation(
        np.vstack([a.dims, b.dims]),
        np.concatenate([a.measure, b.measure]),
    )


def _link_tree(src: str, dst: str) -> None:
    """Instant store copy: hard links, no data bytes moved."""
    shutil.copytree(src, dst, copy_function=os.link)


def _canon(rel):
    if rel.dims.shape[1] == 0:
        return rel.dims, rel.measure
    order = np.lexsort(rel.dims.T[::-1])
    return rel.dims[order], rel.measure[order]


def _answers_identical(
    path_a: str, path_b: str, queries=QUERIES
) -> bool:
    for index in (False, True):
        ea = CubeStore.open(path_a).query_engine(index=index)
        eb = CubeStore.open(path_b).query_engine(index=index)
        for query in queries:
            ra, rb = ea.answer(query), eb.answer(query)
            da, ma = _canon(ra)
            db, mb = _canon(rb)
            if not (np.array_equal(da, db) and np.array_equal(ma, mb)):
                return False
    return True


def timing_lane(tmpdir: str, quick: bool) -> dict:
    n = QUICK_N if quick else FULL_N
    fractions = FRACTIONS_QUICK if quick else FRACTIONS_FULL
    spec = MachineSpec(p=P)
    pool = int_relation(int(n * (1 + max(fractions))) + 1, seed=11)
    base = pool.slice(0, n)
    extra_pool = pool.slice(n, pool.nrows)
    base_store = os.path.join(tmpdir, "timing-base")
    CubeStore.save(build_data_cube(base, CARDS, spec), base_store)
    rows = []
    for fraction in fractions:
        dn = max(int(n * fraction), 1)
        delta = extra_pool.slice(0, dn)
        work = os.path.join(tmpdir, f"timing-refresh-{fraction}")
        _link_tree(base_store, work)
        t0 = time.perf_counter()
        report = refresh_store(work, delta, spec=spec)
        refresh_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        cube = build_data_cube(concat(base, delta), CARDS, spec)
        rebuild_path = os.path.join(
            tmpdir, f"timing-rebuild-{fraction}"
        )
        CubeStore.save(cube, rebuild_path)
        rebuild_s = time.perf_counter() - t0
        rows.append(
            {
                "fraction": fraction,
                "delta_rows": dn,
                "refresh_s": round(refresh_s, 4),
                "rebuild_s": round(rebuild_s, 4),
                "speedup": round(rebuild_s / max(refresh_s, 1e-9), 2),
                "delta_build_s": round(report.delta_build_seconds, 4),
                "merge_s": round(report.merge_seconds, 4),
                "views_merged": report.views_merged,
                "files_linked": report.files_linked,
            }
        )
        print(
            f"  fraction {fraction:6.3f} ({dn:7,} rows): refresh "
            f"{refresh_s:7.3f}s vs rebuild {rebuild_s:7.3f}s -> "
            f"{rows[-1]['speedup']:6.2f}x"
        )
        shutil.rmtree(work)
        shutil.rmtree(rebuild_path)
    return {"format": 2, "base_rows": n, "fractions": rows}


def identity_lane(tmpdir: str, quick: bool) -> dict:
    n = 20_000 if quick else 60_000
    dn = max(n // 20, 1)  # the 5% acceptance point
    spec = MachineSpec(p=P)
    rel = int_relation(n + dn, seed=21)
    base, delta = rel.slice(0, n), rel.slice(n, n + dn)
    out = {}
    for fmt in (2, 3):
        live = os.path.join(tmpdir, f"identity-live-{fmt}")
        CubeStore.save(build_data_cube(base, CARDS, spec), live,
                       format=fmt)
        refresh_store(live, delta, spec=spec)
        rebuilt = os.path.join(tmpdir, f"identity-rebuilt-{fmt}")
        CubeStore.save(build_data_cube(rel, CARDS, spec), rebuilt,
                       format=fmt)
        audit = audit_cube(CubeStore.load(live), relation=rel)
        out[f"format{fmt}"] = {
            "bit_identical": _answers_identical(live, rebuilt),
            "audit_ok": bool(audit.ok),
        }
    return out


def promotion_lane(tmpdir: str, quick: bool) -> dict:
    cards = (40, 30, 20)
    spec = MachineSpec(p=P)
    rng = np.random.default_rng(31)
    n_base = 2_000 if quick else 4_000
    n_hot = 3_000 if quick else 8_000
    base = Relation(
        np.column_stack(
            [rng.integers(0, c, size=n_base, dtype=np.int64)
             for c in cards]
        ),
        rng.integers(1, 100, size=n_base).astype(np.float64),
    )
    hot = Relation(
        np.column_stack(
            [
                rng.integers(0, 4, size=n_hot, dtype=np.int64),
                rng.integers(0, 30, size=n_hot, dtype=np.int64),
                rng.integers(0, 20, size=n_hot, dtype=np.int64),
            ]
        ),
        rng.integers(1, 100, size=n_hot).astype(np.float64),
    )
    live = os.path.join(tmpdir, "promo-live")
    CubeStore.save(build_data_cube(base, cards, spec), live, format=3)
    report = refresh_store(live, hot, spec=spec)
    rebuilt = os.path.join(tmpdir, "promo-rebuilt")
    CubeStore.save(
        build_data_cube(concat(base, hot), cards, spec),
        rebuilt,
        format=3,
    )
    promo_queries = [
        Query(group_by=()),
        Query(group_by=(0,)),
        Query(group_by=(0, 1), filters={0: (0, 3)}),
        Query(group_by=(2,), filters={0: (1, 1)}),
    ]
    return {
        "blocks_promoted": report.blocks_promoted,
        "bit_identical": _answers_identical(live, rebuilt, promo_queries),
    }


def serving_lane(tmpdir: str, quick: bool) -> dict:
    from repro.olap.servebench import run_with_refresh
    from repro.olap.service import QueryService
    from repro.olap.supervise import ServicePolicy

    spec = MachineSpec(p=P)
    n = 20_000 if quick else 60_000
    rel = int_relation(n, seed=41)
    store = os.path.join(tmpdir, "serving-live")
    CubeStore.save(build_data_cube(rel, CARDS, spec), store)
    n_batches = 2 if quick else 3
    batch_rows = 1_000 if quick else 3_000
    rng = np.random.default_rng(42)
    batches = [
        Relation(
            np.column_stack(
                [
                    rng.integers(0, c, size=batch_rows, dtype=np.int64)
                    for c in CARDS
                ]
            ),
            rng.integers(1, 100, size=batch_rows).astype(np.float64),
        )
        for _ in range(n_batches)
    ]
    n_queries = 80 if quick else 240
    refresh_every = n_queries // (n_batches + 1)
    policy = ServicePolicy(
        heartbeat_interval=0.05, current_poll_interval=0.05
    )
    workload = [Query(group_by=(d,)) for d in range(len(CARDS))] + [
        Query(group_by=(0, 1), filters={0: (2, 19)})
    ]
    with QueryService(
        store, workers=2, policy=policy, byte_budget=16 << 20
    ) as service:
        rung = run_with_refresh(
            service,
            workload,
            batches,
            offered_qps=40.0 if quick else 80.0,
            n_queries=n_queries,
            refresh_every=refresh_every,
            probe=Query(group_by=(0,)),
            spec=spec,
        )
    return rung


def run() -> dict:
    import tempfile

    quick = _quick()
    with tempfile.TemporaryDirectory() as tmpdir:
        print("timing lane:")
        timing = timing_lane(tmpdir, quick)
        identity = identity_lane(tmpdir, quick)
        promotion = promotion_lane(tmpdir, quick)
        serving = serving_lane(tmpdir, quick)
    report = {
        "bench": "refresh",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "targets": {
            "speedup_at_5pct": (
                SPEEDUP_TARGET_QUICK if quick else SPEEDUP_TARGET_FULL
            ),
            "availability": AVAILABILITY_TARGET,
        },
        "timing": timing,
        "identity": identity,
        "promotion": promotion,
        "serving": serving,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    """Assert the bench's claims (all four lanes gate in every mode;
    only the timing multiplier relaxes under --quick)."""
    target = report["targets"]["speedup_at_5pct"]
    for row in report["timing"]["fractions"]:
        if row["fraction"] <= 0.05:
            assert row["speedup"] >= target, (
                f"refresh at {row['fraction']:.1%} delta is only "
                f"{row['speedup']}x faster than rebuild "
                f"(target {target}x)"
            )
    for fmt, lane in report["identity"].items():
        assert lane["bit_identical"], (
            f"{fmt}: refreshed store diverged from the rebuild"
        )
        assert lane["audit_ok"], f"{fmt}: audit failed after refresh"
    assert report["promotion"]["blocks_promoted"] > 0, (
        "hot delta never promoted a block to dense"
    )
    assert report["promotion"]["bit_identical"], (
        "promotion path diverged from the rebuild"
    )
    serving = report["serving"]
    assert serving["availability"] >= AVAILABILITY_TARGET, (
        f"availability {serving['availability']:.4f} under live "
        f"refresh (target {AVAILABILITY_TARGET})"
    )
    assert serving["refresh_failures"] == [], serving["refresh_failures"]
    assert serving["generation_end"] == serving["refreshes"], (
        "store generation did not advance once per delta batch"
    )
    assert serving["probe_fresh"] is True, (
        "stale answer served across the generation bump"
    )


def test_bench_refresh():
    check_report(run())


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    check_report(run())
    sys.exit(0)
