"""Cost of degraded-mode recovery versus restarting after rank loss.

For each cluster size ``p`` in the sweep this bench kills rank 1
permanently mid-build and finishes the cube four ways:

* clean at ``p`` (what the build would have cost without the loss),
* clean at ``p - 1``, without and with per-iteration checkpoints (the
  lower bounds a degraded build can hope for on the surviving width),
* degraded restart: blacklist the dead rank and redo everything at
  ``p - 1`` from scratch (no checkpoints),
* degraded resume: reshard the dead rank's checkpointed iterations
  across the survivors and continue at ``p - 1``.

All runs use ``compute_scale=0.0`` so the simulated clock is
deterministic.  The report asserts the degraded-mode contract — every
degraded cube matches the clean row count, finishes at width ``p - 1``
with rank 1 on the blacklist and a clean audit, and in a checkpointed
deployment resuming beats a full restart: the resumed final attempt
(replay + reshard + recomputed tail) undercuts the checkpointed clean
``p - 1`` build a restart would have to run, so the resume's total is
below the restart-equivalent total (same lost attempt + that rebuild).

Writes ``BENCH_degraded.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_degraded.py``) or under pytest.
Scale knobs: ``REPRO_BENCH_N`` (rows, default 8,000) and
``REPRO_BENCH_MAXP`` (largest p, default 8 -> sweep (3, 4, 8)).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.config import MachineSpec, RecoveryPolicy
from repro.core.cube import build_data_cube
from repro.data.generator import generate_dataset, paper_preset
from repro.mpi.faults import FaultPlan

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_degraded.json"

#: The injected permanent loss: rank 1 dies entering its 80th collective
#: — late in the build (the sweep's builds run ~100-110 supersteps), the
#: realistic worst case where most of the work is already done.  The
#: degraded resume reshards all of it from checkpoints instead of redoing
#: it at the reduced width; with an *early* loss there is little saved
#: state and the checkpoint premium can make a plain restart cheaper.
CRASH = "crash@r1s80"


def _one(data, cards, p, faults=None, ckpt=None, degrade=False) -> dict:
    machine = MachineSpec(p=p, backend="thread", compute_scale=0.0)
    recovery = None
    if faults:
        recovery = RecoveryPolicy(
            max_retries=0 if degrade else 2,
            mode="degrade" if degrade else "restart",
        )
    t0 = time.perf_counter()
    cube = build_data_cube(
        data,
        cards,
        machine,
        faults=FaultPlan.parse(faults) if faults else None,
        checkpoint_dir=ckpt,
        recovery=recovery,
        audit=True,
    )
    host = time.perf_counter() - t0
    m = cube.metrics
    return {
        "simulated_seconds": m.simulated_seconds,
        "recovered_seconds": m.recovered_seconds,
        "attempts": m.attempts,
        "final_width": m.final_width,
        "ranks_lost": m.ranks_lost,
        "audit_ok": bool(m.audit and m.audit["ok"]),
        "comm_bytes": m.comm_bytes,
        "disk_blocks": m.disk_blocks,
        "output_rows": m.output_rows,
        "host_seconds": round(host, 4),
    }


def run_degraded(n: int | None = None, processors=None) -> dict:
    n = n or int(os.environ.get("REPRO_BENCH_N", 8_000))
    if processors is None:
        max_p = int(os.environ.get("REPRO_BENCH_MAXP", 8))
        processors = tuple(p for p in (3, 4, 8) if p <= max_p) or (3,)
    spec_ds = paper_preset(n, seed=3)
    data = generate_dataset(spec_ds)
    cards = spec_ds.cardinalities
    results = []
    for p in processors:
        row: dict = {"p": p}
        row["clean"] = _one(data, cards, p)
        row["clean_p_minus_1"] = _one(data, cards, p - 1)
        with tempfile.TemporaryDirectory() as ck:
            row["clean_p_minus_1_ckpt"] = _one(data, cards, p - 1, ckpt=ck)
        row["degrade_restart"] = _one(
            data, cards, p, faults=CRASH, degrade=True
        )
        with tempfile.TemporaryDirectory() as ck:
            row["degrade_resume"] = _one(
                data, cards, p, faults=CRASH, ckpt=ck, degrade=True
            )
        # What a checkpointed deployment would pay to restart instead of
        # resume: the same lost attempt, then a full checkpointed
        # rebuild on the surviving width.
        row["restart_equivalent_seconds"] = round(
            row["degrade_resume"]["recovered_seconds"]
            + row["clean_p_minus_1_ckpt"]["simulated_seconds"],
            6,
        )
        base = row["clean"]["simulated_seconds"]
        row["overhead"] = {
            variant: round(row[variant]["simulated_seconds"] / base, 4)
            for variant in (
                "clean_p_minus_1",
                "clean_p_minus_1_ckpt",
                "degrade_restart",
                "degrade_resume",
            )
        }
        results.append(row)
        print(
            f"  p={p}  clean {base:8.3f} s   "
            + "   ".join(
                f"{k} x{v:.3f}" for k, v in row["overhead"].items()
            )
        )
    report = {
        "bench": "degraded",
        "n": n,
        "processors": list(processors),
        "crash": CRASH,
        "python": platform.python_version(),
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    for row in report["results"]:
        clean = row["clean"]
        for variant in (
            "clean_p_minus_1",
            "clean_p_minus_1_ckpt",
            "degrade_restart",
            "degrade_resume",
        ):
            run = row[variant]
            assert run["output_rows"] == clean["output_rows"], (
                f"p={row['p']} {variant}: cube size changed "
                f"({run['output_rows']} vs {clean['output_rows']})"
            )
            assert run["audit_ok"], f"p={row['p']} {variant}: audit failed"
        # Both degraded variants lose exactly rank 1 and end at p - 1.
        for variant in ("degrade_restart", "degrade_resume"):
            run = row[variant]
            assert run["final_width"] == row["p"] - 1
            assert run["ranks_lost"] == [1]
            assert run["attempts"] == 2
            assert run["recovered_seconds"] > 0
        # A degraded restart redoes the whole build on the surviving
        # width: its final attempt costs exactly one clean p-1 build.
        restart_final = (
            row["degrade_restart"]["simulated_seconds"]
            - row["degrade_restart"]["recovered_seconds"]
        )
        assert (
            abs(restart_final - row["clean_p_minus_1"]["simulated_seconds"])
            < 1e-6
        ), (
            f"p={row['p']}: degraded restart cost {restart_final}, "
            f"expected the clean p-1 "
            f"{row['clean_p_minus_1']['simulated_seconds']}"
        )
        # The headline: resharding the dead rank's checkpoints and
        # continuing beats rebuilding at p-1 with checkpoints back on —
        # the resumed attempt replays saved iterations instead of
        # re-running their collectives.
        resume_final = (
            row["degrade_resume"]["simulated_seconds"]
            - row["degrade_resume"]["recovered_seconds"]
        )
        assert (
            resume_final
            < row["clean_p_minus_1_ckpt"]["simulated_seconds"]
        ), f"p={row['p']}: resumed attempt did not skip any work"
        assert (
            row["degrade_resume"]["simulated_seconds"]
            < row["restart_equivalent_seconds"]
        ), f"p={row['p']}: degraded resume did not beat a full restart"


def test_degraded_overhead():
    check_report(run_degraded())


if __name__ == "__main__":
    check_report(run_degraded())
    sys.exit(0)
