"""Figure 5: full-cube wall clock and relative speedup vs processor count,
for two input sizes (the paper's n = 1M and n = 2M)."""

from conftest import record

from repro.bench.experiments import fig5_speedup
from repro.bench.reporting import format_series_table


def test_fig5_speedup(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig5_speedup, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series) + f"\n  note: {notes}"
    record(results_dir, "fig05_speedup", text)

    small, large = series
    max_p = max(scale.processors)

    def at(s, p):
        return next(pt for pt in s.points if pt.x == p)

    # Shape 1: speedup grows with p for both sizes.
    for s in series:
        assert at(s, max_p).speedup > at(s, min(scale.processors)).speedup

    # Shape 2: the larger input achieves at least the smaller one's speedup
    # at full machine size (communication amortises better).
    assert at(large, max_p).speedup >= at(small, max_p).speedup * 0.9

    # Shape 3: meaningful parallel efficiency at full size (paper: close to
    # optimal; reduced scale stays well above half of linear at p=8).
    if 8 in scale.processors:
        assert at(large, 8).speedup > 4.0

    benchmark.extra_info["speedup_at_max_p"] = at(large, max_p).speedup
