"""Figure 9: cardinality mixes A-D (density/sparsity and the hard
skewed-leading-dimension case)."""

from conftest import record

from repro.bench.experiments import fig9_cardinality
from repro.bench.reporting import format_series_table


def test_fig9_cardinality(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig9_cardinality, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series) + f"\n  note: {notes}"
    record(results_dir, "fig09_cardinality", text)

    by_label = {s.label.split(":")[0]: s for s in series}
    max_p = max(scale.processors)

    def at(label, p=None):
        s = by_label[label]
        return next(pt for pt in s.points if pt.x == (p or max_p))

    # Shape 1: the sparse mix (A) costs more absolute work than the dense
    # mix (C) — sparser cubes mean more output rows to compute and write.
    # Compared at the smallest p, where latency noise cannot mask it.
    min_p = min(scale.processors)
    assert at("A", min_p).seconds > at("C", min_p).seconds
    assert at("A").extra["output_rows"] > at("C").extra["output_rows"]

    # Shape 2: every mix keeps a usable speedup at full machine size; the
    # hard case (D) stays above half of the uniform mix's speedup
    # (paper: "still close to half of the optimal speedup").
    for label in by_label:
        assert at(label).speedup > 1.0
    assert at("D").speedup > at("B").speedup * 0.35
