"""Figure 10: wall clock vs data dimensionality (output grows ~2^d)."""

import numpy as np
from conftest import record

from repro.bench.experiments import fig10_dimensionality
from repro.bench.reporting import format_series_table


def test_fig10_dimensionality(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        fig10_dimensionality, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(
        title, series, show_speedup=False, show_comm=True
    ) + f"\n  note: {notes}"
    record(results_dir, "fig10_dimensionality", text)

    (s,) = series
    by_d = {pt.x: pt for pt in s.points}

    # Shape 1: time grows monotonically with d.
    times = [by_d[d].seconds for d in sorted(by_d)]
    assert all(b > a for a, b in zip(times, times[1:]))

    # Shape 2: output size grows super-linearly with d (the 2^d views).
    rows = [by_d[d].extra["output_rows"] for d in sorted(by_d)]
    assert rows[-1] > rows[0] * 4

    # Shape 3: the paper's claim — time is essentially *linear in the
    # output size* despite the exponential view count.  Check the
    # correlation of time against output rows is strong and the fit is
    # close to proportional.
    t = np.array(times)
    r = np.array(rows, dtype=float)
    corr = np.corrcoef(t, r)[0, 1]
    assert corr > 0.98
