"""Beyond the paper: what the γ balance contract buys at query time.

Two experiments: the original balance A/B (below), and an access-path
matrix covering all three serving lanes — full scan, fence-index
``searchsorted``, and the format-3 dense block-offset path — over the
same store, asserting bit-identical answers and recording p50 latency
per lane.

The paper motivates balancing every view across processors with
"maximum I/O bandwidth for subsequent parallel disk accesses".  This
bench builds two cubes from skewed data — the paper's adaptive merge vs
``merge_policy="never_resort"`` (ownership routing only, no re-balancing)
— and compares (a) the stored per-rank distribution of the views the
adaptive rule chose to re-sort and (b) parallel group-by latency over
them.  Also records the Section 4.1 overlap estimate for the standard
build (the paper claims 40-60% of communication overhead is maskable).
"""

import json
import time

import numpy as np
from conftest import record

from repro.bench.harness import dataset_for
from repro.bench.reporting import format_kv_block
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.overlap import analyze_overlap
from repro.data.generator import DatasetSpec, generate_dataset, paper_preset
from repro.olap import CubeStore, Query, QueryEngine
from repro.storage.reorder import reorder_relation


def _imbalance(cube, view) -> float:
    dist = cube.distribution(view).astype(float)
    return float(dist.max() / max(dist.mean(), 1e-9))


def test_query_latency_vs_balance(benchmark, scale, results_dir):
    def run():
        spec = paper_preset(scale.n_base, alpha=1.5, seed=99)
        data = dataset_for(spec)
        p = max(scale.processors)
        machine = MachineSpec(p=p)
        balanced = build_data_cube(data, spec.cardinalities, machine)
        loose = build_data_cube(
            data, spec.cardinalities, machine,
            CubeConfig(merge_policy="never_resort"),
        )
        # the views the adaptive rule re-sorted, largest first
        resorted = [
            v
            for rep in balanced.merge_reports
            for v, case in rep.cases.items()
            if case == "case3"
        ]
        resorted.sort(key=balanced.view_rows, reverse=True)
        probe = resorted[:4]
        imb_balanced = [_imbalance(balanced, v) for v in probe]
        imb_loose = [_imbalance(loose, v) for v in probe]
        t_bal = t_loose = 0.0
        for view in probe:
            q = Query(group_by=view)
            r1, s1 = QueryEngine(balanced).answer_parallel(q)
            r2, s2 = QueryEngine(loose).answer_parallel(q)
            assert r1.same_content(r2)  # same answers, different layout
            t_bal += s1
            t_loose += s2
        overlap = analyze_overlap(balanced)
        return imb_balanced, imb_loose, t_bal, t_loose, overlap

    imb_balanced, imb_loose, t_bal, t_loose, overlap = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    pairs = [
        (
            "re-sorted views, balanced cube max/mean",
            " ".join(f"{x:.2f}" for x in imb_balanced),
        ),
        (
            "same views, never-resort cube max/mean",
            " ".join(f"{x:.2f}" for x in imb_loose),
        ),
        ("balanced cube query latency", f"{t_bal * 1e3:.1f} ms"),
        ("never-resort cube query latency", f"{t_loose * 1e3:.1f} ms"),
        ("overlap: merge comm maskable", f"{overlap.masked_fraction:.0%}"),
        ("overlap: build-time gain", f"{overlap.speedup_gain():.2f}x"),
    ]
    record(
        results_dir,
        "query_latency",
        format_kv_block(
            "Query latency vs view balance (+ Section 4.1 overlap estimate)",
            pairs,
        ),
    )
    # Machine-readable twin of the text report, for tooling.
    (results_dir / "query_latency.json").write_text(
        json.dumps(
            {
                "bench": "query_latency",
                "imbalance_balanced": [float(x) for x in imb_balanced],
                "imbalance_never_resort": [float(x) for x in imb_loose],
                "balanced_latency_s": float(t_bal),
                "never_resort_latency_s": float(t_loose),
                "overlap_masked_fraction": float(overlap.masked_fraction),
                "overlap_speedup_gain": float(overlap.speedup_gain()),
            },
            indent=2,
        )
        + "\n"
    )

    # The γ contract: every re-sorted view is near-even in the balanced
    # cube and (on skewed data) clearly lopsided without re-sorting.
    assert max(imb_balanced) < 1.2
    assert np.mean(imb_loose) > np.mean(imb_balanced) * 1.3
    # End-to-end latency must not regress (it improves once view scans
    # dominate the fixed collective latency, i.e. at larger REPRO_BENCH_N).
    assert t_bal <= t_loose * 1.1
    # The paper's 40-60% masking estimate should be within reach.
    assert overlap.masked_fraction > 0.2


CARDS_AP = (24, 16, 10, 8)


def test_access_path_matrix(benchmark, scale, results_dir, tmp_path):
    """Scan vs index vs dense on one reordered hybrid store."""

    def run():
        rel = generate_dataset(
            DatasetSpec(
                n=scale.n_base,
                cardinalities=CARDS_AP,
                alphas=(1.2, 0.9, 0.6, 0.3),
                seed=43,
                scramble=True,
            )
        )
        reordered, vr = reorder_relation(rel, CARDS_AP)
        cube = build_data_cube(reordered, CARDS_AP, MachineSpec(p=2))
        path = CubeStore.save(
            cube,
            str(tmp_path / "hybrid"),
            format=3,
            reorder=vr,
            block_cells=256,
        )
        handle = CubeStore.open(path)
        lanes = {
            "scan": handle.query_engine(index=False),
            "index": handle.query_engine(index=True),
        }
        # hot-corner point lookups: original values whose reordered
        # codes are small, so their keys land in dense blocks
        rng = np.random.default_rng(5)
        queries = [
            Query(
                group_by=(),
                filters={
                    dim: (int(vr.inverse[dim][rng.integers(0, 3)]),) * 2
                    for dim in range(len(CARDS_AP))
                },
            )
            for _ in range(60)
        ]
        dense_hits = sum(
            lanes["index"].explain(q).access_path == "dense"
            for q in queries
        )
        p50 = {}
        identical = True
        reference = [lanes["scan"].answer(q) for q in queries]
        for name, engine in lanes.items():
            best = np.full(len(queries), np.inf)
            for _ in range(3):
                for i, q in enumerate(queries):
                    t0 = time.perf_counter()
                    got = engine.answer(q)
                    best[i] = min(best[i], time.perf_counter() - t0)
                    if not (
                        np.array_equal(got.dims, reference[i].dims)
                        and np.array_equal(
                            got.measure, reference[i].measure
                        )
                    ):
                        identical = False
            p50[name] = float(np.percentile(best, 50) * 1e6)
        return p50, dense_hits, len(queries), identical

    p50, dense_hits, n_queries, identical = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    pairs = [
        ("point queries", str(n_queries)),
        ("resolved via dense path", f"{dense_hits}/{n_queries}"),
        ("scan p50", f"{p50['scan']:.0f} us"),
        ("index/dense p50", f"{p50['index']:.0f} us"),
        ("all paths bit-identical", str(identical)),
    ]
    record(
        results_dir,
        "access_paths",
        format_kv_block("Access-path latency matrix (format-3 store)", pairs),
    )
    (results_dir / "access_paths.json").write_text(
        json.dumps(
            {
                "bench": "access_paths",
                "p50_us": {k: round(v, 1) for k, v in p50.items()},
                "dense_hits": dense_hits,
                "queries": n_queries,
                "bit_identical": identical,
            },
            indent=2,
        )
        + "\n"
    )
    assert identical, "access paths disagreed on point lookups"
    assert dense_hits > 0, "no query resolved via the dense path"
    # the indexed lanes must beat the full scan outright
    assert p50["index"] < p50["scan"]
