"""Beyond the paper: what the γ balance contract buys at query time.

The paper motivates balancing every view across processors with
"maximum I/O bandwidth for subsequent parallel disk accesses".  This
bench builds two cubes from skewed data — the paper's adaptive merge vs
``merge_policy="never_resort"`` (ownership routing only, no re-balancing)
— and compares (a) the stored per-rank distribution of the views the
adaptive rule chose to re-sort and (b) parallel group-by latency over
them.  Also records the Section 4.1 overlap estimate for the standard
build (the paper claims 40-60% of communication overhead is maskable).
"""

import json

import numpy as np
from conftest import record

from repro.bench.harness import dataset_for
from repro.bench.reporting import format_kv_block
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.overlap import analyze_overlap
from repro.data.generator import paper_preset
from repro.olap import Query, QueryEngine


def _imbalance(cube, view) -> float:
    dist = cube.distribution(view).astype(float)
    return float(dist.max() / max(dist.mean(), 1e-9))


def test_query_latency_vs_balance(benchmark, scale, results_dir):
    def run():
        spec = paper_preset(scale.n_base, alpha=1.5, seed=99)
        data = dataset_for(spec)
        p = max(scale.processors)
        machine = MachineSpec(p=p)
        balanced = build_data_cube(data, spec.cardinalities, machine)
        loose = build_data_cube(
            data, spec.cardinalities, machine,
            CubeConfig(merge_policy="never_resort"),
        )
        # the views the adaptive rule re-sorted, largest first
        resorted = [
            v
            for rep in balanced.merge_reports
            for v, case in rep.cases.items()
            if case == "case3"
        ]
        resorted.sort(key=balanced.view_rows, reverse=True)
        probe = resorted[:4]
        imb_balanced = [_imbalance(balanced, v) for v in probe]
        imb_loose = [_imbalance(loose, v) for v in probe]
        t_bal = t_loose = 0.0
        for view in probe:
            q = Query(group_by=view)
            r1, s1 = QueryEngine(balanced).answer_parallel(q)
            r2, s2 = QueryEngine(loose).answer_parallel(q)
            assert r1.same_content(r2)  # same answers, different layout
            t_bal += s1
            t_loose += s2
        overlap = analyze_overlap(balanced)
        return imb_balanced, imb_loose, t_bal, t_loose, overlap

    imb_balanced, imb_loose, t_bal, t_loose, overlap = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    pairs = [
        (
            "re-sorted views, balanced cube max/mean",
            " ".join(f"{x:.2f}" for x in imb_balanced),
        ),
        (
            "same views, never-resort cube max/mean",
            " ".join(f"{x:.2f}" for x in imb_loose),
        ),
        ("balanced cube query latency", f"{t_bal * 1e3:.1f} ms"),
        ("never-resort cube query latency", f"{t_loose * 1e3:.1f} ms"),
        ("overlap: merge comm maskable", f"{overlap.masked_fraction:.0%}"),
        ("overlap: build-time gain", f"{overlap.speedup_gain():.2f}x"),
    ]
    record(
        results_dir,
        "query_latency",
        format_kv_block(
            "Query latency vs view balance (+ Section 4.1 overlap estimate)",
            pairs,
        ),
    )
    # Machine-readable twin of the text report, for tooling.
    (results_dir / "query_latency.json").write_text(
        json.dumps(
            {
                "bench": "query_latency",
                "imbalance_balanced": [float(x) for x in imb_balanced],
                "imbalance_never_resort": [float(x) for x in imb_loose],
                "balanced_latency_s": float(t_bal),
                "never_resort_latency_s": float(t_loose),
                "overlap_masked_fraction": float(overlap.masked_fraction),
                "overlap_speedup_gain": float(overlap.speedup_gain()),
            },
            indent=2,
        )
        + "\n"
    )

    # The γ contract: every re-sorted view is near-even in the balanced
    # cube and (on skewed data) clearly lopsided without re-sorting.
    assert max(imb_balanced) < 1.2
    assert np.mean(imb_loose) > np.mean(imb_balanced) * 1.3
    # End-to-end latency must not regress (it improves once view scans
    # dominate the fixed collective latency, i.e. at larger REPRO_BENCH_N).
    assert t_bal <= t_loose * 1.1
    # The paper's 40-60% masking estimate should be within reach.
    assert overlap.masked_fraction > 0.2
