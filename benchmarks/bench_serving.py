"""Closed-loop benchmark of the OLAP serving tier.

Four lanes over one synthetic serving cube (a ≥1M-row base view plus
its roll-ups, stored in :mod:`repro.olap.store` format 2):

* **store** — save / open cost and on-disk footprint of the mmap
  layout, plus the fence-index sizes persisted in the manifest;
* **access_path** — point-lookup latency A/B between the full-scan
  engine (``index=False``) and the store-backed index path, asserting
  the ≥{SPEEDUP_TARGET}x p50 speedup in full mode and bit-identical
  results in every mode, with the mmap meter showing how few rows the
  index path touched;
* **service** — an offered-QPS ladder through :class:`QueryService`
  at 1 and {MULTI_WORKERS} workers (mixed point/roll-up/slice
  workload, result cache off), reporting p50/p95/p99 per rung and the
  max sustained QPS (highest rung with achieved ≥ 0.9x offered).  The
  multi>single assertion only gates on hosts with ≥2 cores — on a
  single core the workers time-slice and the numbers are recorded
  honestly;
* **parity** — every result served through the process pool compared
  bit-for-bit against ``QueryEngine.answer`` on the same queries
  (asserted in every mode).

Writes ``BENCH_serving.json`` at the repository root.  Runnable
standalone (``python benchmarks/bench_serving.py [--quick]``) or under
pytest.  Scale knobs: ``REPRO_BENCH_SERVE_N`` (base-view rows, default
1,200,000) and ``REPRO_BENCH_QUICK`` / ``--quick`` (shrink everything;
CI smoke mode — speedup and QPS targets recorded, not asserted).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.olap.query import Query, QueryEngine
from repro.olap.servebench import (
    latency_percentiles,
    run_at_rate,
    serving_workload,
    synthetic_serving_cube,
)
from repro.olap.service import QueryService
from repro.olap.store import CubeStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serving.json"

#: Required p50 point-lookup speedup, index path over full scan.
SPEEDUP_TARGET = 5.0
#: Worker count for the multi-worker ladder.
MULTI_WORKERS = 2
#: A rung is sustained when achieved QPS >= this fraction of offered.
SUSTAIN_FRACTION = 0.9

CARDS = (128, 64, 32, 16)


def _quick() -> bool:
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def _dir_bytes(path: str) -> int:
    total = 0
    for root, _, files in os.walk(path):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


def build_store(tmpdir: str, n_rows: int) -> tuple[dict, str]:
    """Lane 1: synthesise, save (format 2), reopen; record costs."""
    t0 = time.perf_counter()
    cube = synthetic_serving_cube(n_rows, CARDS, p=4, seed=0xCafe)
    synth_s = time.perf_counter() - t0
    path = os.path.join(tmpdir, "serving_cube")
    t0 = time.perf_counter()
    CubeStore.save(cube, path)
    save_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    handle = CubeStore.open(path)
    engine = handle.query_engine()  # forces mmap of every sorted view
    open_s = time.perf_counter() - t0
    base = tuple(range(len(CARDS)))
    lane = {
        "base_rows": int(cube.view_rows(base)),
        "views": len(cube.views),
        "sorted_views": len(handle.sorted_views),
        "fence_entries": sum(
            sv.fence.keys.shape[0] for sv in handle.sorted_views.values()
        ),
        "disk_bytes": _dir_bytes(path),
        "synthesize_seconds": round(synth_s, 3),
        "save_seconds": round(save_s, 3),
        "open_seconds": round(open_s, 4),
    }
    print(
        f"  store      {lane['base_rows']:>9,} base rows, "
        f"{lane['views']} views, {lane['disk_bytes'] / 1e6:.1f} MB  "
        f"save {save_s:.2f} s  open {open_s * 1e3:.1f} ms"
    )
    del engine
    return lane, path


def run_access_path(cube, handle, n_queries: int) -> dict:
    """Lane 2: point-lookup p50 A/B, scan engine vs index engine."""
    scan_engine = QueryEngine(cube, index=False)
    index_engine = handle.query_engine()
    workload = [
        q
        for kind, q in serving_workload(
            CARDS, n=4 * n_queries, seed=1, mix=(1.0, 0.0, 0.0)
        )
    ][:n_queries]
    meter_before = handle.meter.snapshot()
    scan_lat, index_lat = [], []
    identical = True
    for query in workload:
        t0 = time.perf_counter()
        expect = scan_engine.answer(query)
        scan_lat.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        got = index_engine.answer(query)
        index_lat.append(time.perf_counter() - t0)
        identical = identical and bool(
            np.array_equal(expect.dims, got.dims)
            and np.array_equal(expect.measure, got.measure)
        )
    meter = handle.meter.snapshot()
    scan_p = latency_percentiles(scan_lat)
    index_p = latency_percentiles(index_lat)
    base_rows = cube.view_rows(tuple(range(len(CARDS))))
    lane = {
        "queries": len(workload),
        "base_rows": int(base_rows),
        "scan": scan_p,
        "index": index_p,
        "p50_speedup": round(
            scan_p["p50_ms"] / max(index_p["p50_ms"], 1e-9), 2
        ),
        "bit_identical": identical,
        "index_rows_touched": meter["rows_touched"]
        - meter_before["rows_touched"],
        "scan_rows_per_query": int(base_rows),
    }
    print(
        f"  access     point lookups over {base_rows:,} rows: "
        f"scan p50 {scan_p['p50_ms']:8.2f} ms | "
        f"index p50 {index_p['p50_ms']:6.3f} ms "
        f"-> {lane['p50_speedup']:.1f}x  "
        f"(identical={identical})"
    )
    return lane


def run_service_ladder(
    store_path: str, ladder: list[float], duration_s: float
) -> dict:
    """Lane 3: offered-QPS ladder at 1 and MULTI_WORKERS workers."""
    workload = [
        q
        for _, q in serving_workload(
            CARDS, n=512, seed=2, mix=(0.7, 0.2, 0.1)
        )
    ]
    lane: dict = {
        "ladder": ladder,
        "duration_s": duration_s,
        "configs": {},
    }
    for workers in (1, MULTI_WORKERS):
        rungs = []
        with QueryService(
            store_path, workers=workers, byte_budget=None
        ) as service:
            # Warm the workers (first query pays mmap + import cost).
            service.answer_many(workload[:8], timeout=120)
            for offered in ladder:
                rungs.append(
                    run_at_rate(service, workload, offered, duration_s)
                )
        sustained = [
            r["offered_qps"]
            for r in rungs
            if r["achieved_qps"] >= SUSTAIN_FRACTION * r["offered_qps"]
            and not r["errors"]
            and not r["timed_out"]
        ]
        max_sustained = max(sustained) if sustained else 0.0
        lane["configs"][str(workers)] = {
            "workers": workers,
            "rungs": rungs,
            "max_sustained_qps": max_sustained,
        }
        top = rungs[-1]
        print(
            f"  service    workers={workers}: max sustained "
            f"{max_sustained:g} QPS; at {top['offered_qps']:g} offered "
            f"-> {top['achieved_qps']:.1f} achieved, "
            f"p50 {top['p50_ms']:.2f} ms p99 {top['p99_ms']:.2f} ms"
        )
    return lane


def run_parity(store_path: str, cube, n_queries: int) -> dict:
    """Lane 4: pool-served results vs QueryEngine.answer, bit for bit."""
    engine = QueryEngine(cube)
    workload = serving_workload(CARDS, n=n_queries, seed=3)
    identical = True
    by_kind: dict[str, int] = {}
    with QueryService(store_path, workers=2) as service:
        results = service.answer_many(
            [q for _, q in workload], timeout=300
        )
    for (kind, query), got in zip(workload, results):
        by_kind[kind] = by_kind.get(kind, 0) + 1
        expect = engine.answer(query)
        identical = identical and bool(
            np.array_equal(expect.dims, got.dims)
            and np.array_equal(expect.measure, got.measure)
        )
    print(
        f"  parity     {len(workload)} served queries {by_kind} "
        f"identical={identical}"
    )
    return {
        "queries": len(workload),
        "by_kind": by_kind,
        "bit_identical": identical,
    }


def run() -> dict:
    import tempfile

    quick = _quick()
    n_rows = int(
        os.environ.get(
            "REPRO_BENCH_SERVE_N", 50_000 if quick else 1_200_000
        )
    )
    ab_queries = 10 if quick else 40
    ladder = [20.0, 50.0] if quick else [25.0, 50.0, 100.0, 200.0, 400.0]
    duration_s = 0.5 if quick else 2.0
    parity_n = 24 if quick else 96

    with tempfile.TemporaryDirectory() as tmpdir:
        store_lane, store_path = build_store(tmpdir, n_rows)
        handle = CubeStore.open(store_path)
        cube = handle.cube
        access_lane = run_access_path(cube, handle, ab_queries)
        service_lane = run_service_ladder(store_path, ladder, duration_s)
        parity_lane = run_parity(store_path, cube, parity_n)

    report = {
        "bench": "serving",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "targets": {
            "p50_speedup": SPEEDUP_TARGET,
            "sustain_fraction": SUSTAIN_FRACTION,
        },
        "store": store_lane,
        "access_path": access_lane,
        "service": service_lane,
        "parity": parity_lane,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def check_report(report: dict) -> None:
    """Assert the bench's claims.

    Bit-identity gates in every mode.  The speedup target gates in full
    mode only (quick shrinks the base view below the regime the index
    exists for).  The multi>single max-QPS comparison additionally
    needs a host with >= 2 cores: a single core time-slices the worker
    processes, so the comparison would measure the scheduler.
    """
    assert report["access_path"]["bit_identical"], (
        "index path diverged from the scan path"
    )
    assert report["parity"]["bit_identical"], (
        "service results diverged from QueryEngine.answer"
    )
    if report["quick"]:
        print("  quick mode: speedup/QPS targets recorded, not asserted")
        return
    access = report["access_path"]
    assert access["base_rows"] >= 1_000_000, (
        f"base view has only {access['base_rows']:,} rows (need >= 1M)"
    )
    assert access["p50_speedup"] >= SPEEDUP_TARGET, (
        f"index path reached only {access['p50_speedup']:.1f}x over the "
        f"scan path on point lookups (target {SPEEDUP_TARGET}x)"
    )
    configs = report["service"]["configs"]
    single = configs["1"]["max_sustained_qps"]
    multi = configs[str(MULTI_WORKERS)]["max_sustained_qps"]
    assert single > 0, "single-worker service sustained no rung at all"
    if (report["cpu_count"] or 1) >= 2:
        assert multi > single, (
            f"{MULTI_WORKERS} workers sustained {multi:g} QPS, single "
            f"worker {single:g} QPS — no scaling on a multi-core host"
        )
    else:
        print(
            f"  single-core host: multi-worker comparison recorded "
            f"({multi:g} vs {single:g} QPS), not asserted"
        )


def test_bench_serving():
    check_report(run())


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    check_report(run())
    sys.exit(0)
