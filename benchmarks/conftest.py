"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark runs one full experiment (a parameter sweep of cube
builds), records the paper-style table under ``benchmarks/results/`` and
asserts the *shape* conclusions of the corresponding figure.  Scale knobs:
``REPRO_BENCH_N`` (rows standing in for the paper's 1M, default 25,000)
and ``REPRO_BENCH_MAXP`` (largest processor count, default 16).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return scale_from_env()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
