"""Ablations beyond the paper's figures (DESIGN.md section 5):
merge case policy, and one-dimensional partitioning on the hard mix."""

from conftest import record

from repro.bench.experiments import ablation_merge_cases, ablation_onedim
from repro.bench.reporting import format_series_table


def test_ablation_merge_cases(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        ablation_merge_cases, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series, show_comm=True)
    record(results_dir, "ablation_merge_cases", text + f"\n  note: {notes}")

    max_p = max(scale.processors)
    by_label = {s.label: s for s in series}

    def at(label):
        return next(
            pt for pt in by_label[label].points if pt.x == max_p
        )

    # Always re-sorting must move (far) more data than the adaptive rule.
    assert at("always re-sort (case 3)").comm_mb > at("adaptive (paper)").comm_mb
    # Never re-sorting is the comm floor.
    assert at("never re-sort (case 2)").comm_mb <= at("adaptive (paper)").comm_mb * 1.05


def test_ablation_onedim(benchmark, scale, results_dir):
    title, series, notes = benchmark.pedantic(
        ablation_onedim, args=(scale,), rounds=1, iterations=1
    )
    text = format_series_table(title, series)
    record(results_dir, "ablation_onedim", text + f"\n  note: {notes}")

    main, onedim = series
    max_p = max(scale.processors)

    def at(s, p):
        return next(pt for pt in s.points if pt.x == p)

    # On the skewed leading dimension, the paper's all-dims partitioning
    # scales while single-dimension partitioning stalls.
    if max_p >= 8:
        assert at(main, max_p).speedup > at(onedim, max_p).speedup


def test_gigabit_projection(benchmark, scale, results_dir):
    """Section 4's forward-looking claim: the 1 Gbit upgrade 'will further
    improve the relative speedup'.  Projected from the superstep log."""
    from repro.bench.harness import dataset_for
    from repro.bench.reporting import format_kv_block
    from repro.config import MachineSpec
    from repro.core.cube import build_data_cube
    from repro.baselines.sequential import sequential_cube
    from repro.data.generator import paper_preset
    from repro.mpi.whatif import gigabit_upgrade, recost_cube

    def run():
        spec_data = paper_preset(scale.n_base, seed=1)
        data = dataset_for(spec_data)
        p = max(scale.processors)
        machine = MachineSpec(p=p)
        cube = build_data_cube(data, spec_data.cardinalities, machine)
        seq = sequential_cube(data, spec_data.cardinalities)
        proj = recost_cube(cube, gigabit_upgrade(machine))
        return seq.metrics.simulated_seconds, cube, proj, p

    seq_s, cube, proj, p = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup_100mbit = seq_s / proj.measured_seconds
    speedup_1gbit = seq_s / proj.projected_seconds
    pairs = [
        (f"relative speedup p={p}, 100 Mbit", f"{speedup_100mbit:.2f}"),
        (f"relative speedup p={p}, 1 Gbit (projected)", f"{speedup_1gbit:.2f}"),
        ("comm time 100 Mbit", f"{proj.measured_comm_seconds:.2f} s"),
        ("comm time 1 Gbit", f"{proj.projected_comm_seconds:.2f} s"),
    ]
    record(
        results_dir, "gigabit_projection",
        format_kv_block("What-if: the paper's announced 1 Gbit upgrade", pairs),
    )
    # the paper's expectation: the faster interconnect improves speedup
    assert speedup_1gbit > speedup_100mbit


def test_molap_space_argument(benchmark, scale, results_dir):
    """Introduction's claim: ROLAP 'requires only linear space'.  Compare
    per-view bytes of the built (ROLAP) cube against dense MOLAP arrays."""
    from repro.baselines.molap import space_comparison
    from repro.baselines.reference import reference_cube
    from repro.bench.harness import dataset_for
    from repro.bench.reporting import format_kv_block
    from repro.data.generator import paper_preset

    def run():
        spec_data = paper_preset(max(2000, scale.n_base // 4), seed=1)
        data = dataset_for(spec_data)
        ref = reference_cube(data, spec_data.cardinalities)
        rows = {v: r.nrows for v, r in ref.items()}
        table = space_comparison(rows, spec_data.cardinalities)
        rolap_total = sum(r for _, r, _ in table)
        molap_total = sum(m for _, _, m in table)
        return rolap_total, molap_total, data.nrows

    rolap_total, molap_total, n = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    pairs = [
        ("input rows", f"{n:,}"),
        ("ROLAP cube bytes (16 B/row)", f"{rolap_total / 1e6:,.1f} MB"),
        ("MOLAP cube bytes (8 B/cell)", f"{molap_total / 1e6:,.1f} MB"),
        ("MOLAP / ROLAP", f"{molap_total / max(rolap_total, 1):,.1f}x"),
    ]
    record(
        results_dir, "molap_space",
        format_kv_block("ROLAP linear space vs dense MOLAP arrays", pairs),
    )
    assert molap_total > rolap_total  # the sparse regime of the paper


def test_ablation_incremental_roots(benchmark, scale, results_dir):
    """Extension beyond the paper: derive each Di-root from the previous
    root instead of re-sorting the raw chunk (Procedure 1 step 1a).  On
    reducing (skewed) data the roots shrink, so the partition phase gets
    cheaper; results are bit-identical."""
    from repro.bench.harness import dataset_for
    from repro.bench.reporting import format_kv_block
    from repro.config import CubeConfig, MachineSpec
    from repro.core.cube import build_data_cube
    from repro.data.generator import paper_preset

    def run():
        spec_data = paper_preset(scale.n_base, alpha=1.0, seed=2)
        data = dataset_for(spec_data)
        p = max(scale.processors)
        machine = MachineSpec(p=p)
        base = build_data_cube(data, spec_data.cardinalities, machine)
        inc = build_data_cube(
            data, spec_data.cardinalities, machine,
            CubeConfig(incremental_roots=True),
        )
        assert inc.metrics.output_rows == base.metrics.output_rows
        return base.metrics, inc.metrics, p

    base, inc, p = benchmark.pedantic(run, rounds=1, iterations=1)

    def partition_secs(metrics):
        return sum(
            v for k, v in metrics.phase_seconds.items()
            if "partition-sort" in k
        )

    pairs = [
        (f"partition phase p={p}, from raw (paper)",
         f"{partition_secs(base):.2f} s"),
        (f"partition phase p={p}, incremental roots",
         f"{partition_secs(inc):.2f} s"),
        ("total, from raw", f"{base.simulated_seconds:.2f} s"),
        ("total, incremental", f"{inc.simulated_seconds:.2f} s"),
    ]
    record(
        results_dir, "incremental_roots",
        format_kv_block("Ablation: incremental Di-roots", pairs),
    )
    assert partition_secs(inc) <= partition_secs(base) * 1.05
